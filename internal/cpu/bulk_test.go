package cpu

// Equivalence oracle for the bulk REP MOVS/STOS fast path: the
// span-copy retirement must be indistinguishable — registers, flags,
// cycle counter and memory image — from the per-element reference
// loop it replaces. noBulkString is the internal switch that forces
// the reference loop, which is why this test lives inside the package.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/asm"
	"repro/internal/ia32"
	"repro/internal/mem"
)

const (
	bulkTextBase = 0x00100000
	bulkDataBase = 0x00300000
	bulkStackTop = 0x00280000
)

// bulkArm assembles src and prepares one machine with the pattern
// pre-filled data buffer.
func bulkArm(t *testing.T, src string, noBulk bool) (*CPU, *mem.Memory) {
	t.Helper()
	a := asm.New(nil)
	if err := a.AddSource("bulk.s", src); err != nil {
		t.Fatalf("assemble: %v", err)
	}
	prog, err := a.Link(map[string]uint32{"text": bulkTextBase, "data": bulkDataBase}, []string{"text"})
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	m := mem.New()
	m.Map(bulkTextBase, 0x10000, mem.PermRX)
	m.Map(bulkDataBase, 0x10000, mem.PermRW)
	m.Map(bulkStackTop-0x10000, 0x10000, mem.PermRW)
	for _, s := range prog.Sections {
		if err := m.WriteRaw(s.Base, s.Code); err != nil {
			t.Fatalf("load %s: %v", s.Name, err)
		}
	}
	fill := make([]byte, 0x10000)
	for i := range fill {
		fill[i] = byte(i*7 + i>>8)
	}
	if err := m.WriteRaw(bulkDataBase, fill); err != nil {
		t.Fatal(err)
	}
	c := New(m)
	c.noBulkString = noBulk
	c.Regs[ia32.ESP] = bulkStackTop - 4
	if err := m.Write32(c.Regs[ia32.ESP], HostReturn); err != nil {
		t.Fatal(err)
	}
	c.EIP = prog.Symbols["go"]
	return c, m
}

// runBulkPair runs src on the bulk and reference arms and fails on any
// observable difference.
func runBulkPair(t *testing.T, tag, src string) {
	t.Helper()
	ca, ma := bulkArm(t, src, false)
	cb, mb := bulkArm(t, src, true)
	ra, ea := ca.Run(50_000_000)
	rb, eb := cb.Run(50_000_000)
	if ra != rb || (ea == nil) != (eb == nil) || (ea != nil && *ea != *eb) {
		t.Fatalf("%s: stop: bulk=%v/%v ref=%v/%v", tag, ra, ea, rb, eb)
	}
	if sa, sb := ca.CaptureState(), cb.CaptureState(); sa != sb {
		t.Fatalf("%s: state diverged:\nbulk: %+v\nref:  %+v", tag, sa, sb)
	}
	ba, err := ma.ReadRaw(bulkDataBase, 0x10000)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := mb.ReadRaw(bulkDataBase, 0x10000)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ba {
		if ba[i] != bb[i] {
			t.Fatalf("%s: data diverged at +%#x: bulk=%#02x ref=%#02x", tag, i, ba[i], bb[i])
		}
	}
}

func bulkSrc(dir, op string, src, dst, cnt int) string {
	return fmt.Sprintf(`.section data
buf: .skip 49152
.section text
go:
	%s
	mov esi, buf+%d
	mov edi, buf+%d
	mov eax, 0x5AA51234
	mov ecx, %d
	rep %s
	ret
`, dir, src, dst, cnt, op)
}

func TestBulkStringEquivalence(t *testing.T) {
	cases := []struct {
		name          string
		op            string
		dir           string
		src, dst, cnt int
	}{
		{"movsb-basic", "movsb", "cld", 0x100, 0x4100, 123},
		{"movsb-zero", "movsb", "cld", 0x100, 0x4100, 0},
		{"movsb-below-min", "movsb", "cld", 0x100, 0x4100, 7},
		{"movsb-at-min", "movsb", "cld", 0x100, 0x4100, 8},
		{"movsb-page-straddle", "movsb", "cld", 0xF80, 0x4FF0, 0x220},
		{"movsb-overlap-fwd", "movsb", "cld", 0x100, 0x110, 0x200},
		{"movsb-overlap-back", "movsb", "cld", 0x210, 0x200, 0x200},
		{"movsb-adjacent-pages", "movsb", "cld", 0xFF0, 0x1000, 0x40},
		{"movsb-huge", "movsb", "cld", 0x0, 0x8000, 0x2000},
		{"movsb-chunk-cap", "movsb", "cld", 0x0, 0x8000, 0x1800},
		{"movsb-backward", "movsb", "std", 0x300, 0x4300, 40},
		{"movsd-basic", "movsd", "cld", 0x100, 0x4100, 300},
		{"movsd-unaligned", "movsd", "cld", 0x0FE, 0x4002, 1000},
		{"movsd-tail-straddle", "movsd", "cld", 0x102, 0x4FFE, 9},
		{"movsd-overlap", "movsd", "cld", 0x100, 0x108, 0x100},
		{"stosb-basic", "stosb", "cld", 0, 0x4100, 123},
		{"stosb-straddle", "stosb", "cld", 0, 0x4FF8, 0x210},
		{"stosb-huge", "stosb", "cld", 0, 0x6000, 0x3000},
		{"stosd-basic", "stosd", "cld", 0, 0x4100, 300},
		{"stosd-unaligned", "stosd", "cld", 0, 0x4FF7, 9},
		{"stosd-backward", "stosd", "std", 0, 0x4300, 20},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			runBulkPair(t, tc.name, bulkSrc(tc.dir, tc.op, tc.src, tc.dst, tc.cnt))
		})
	}
}

// TestBulkStringEquivalenceFuzz sweeps random geometries, including
// overlapping ranges and counts far beyond one REP chunk.
func TestBulkStringEquivalenceFuzz(t *testing.T) {
	trials := 150
	if testing.Short() {
		trials = 30
	}
	rng := rand.New(rand.NewSource(0xB71C))
	for i := 0; i < trials; i++ {
		op := []string{"movsb", "movsd", "stosb", "stosd"}[rng.Intn(4)]
		dir := "cld"
		if rng.Intn(8) == 0 {
			dir = "std"
		}
		src := rng.Intn(0x6000)
		dst := rng.Intn(0x6000)
		cnt := rng.Intn(0x2800)
		if dir == "std" {
			cnt = rng.Intn(64) // keep backward runs inside buf
			src += 0x1000
			dst += 0x1000
		}
		tag := fmt.Sprintf("fuzz %d: %s %s src=%#x dst=%#x cnt=%#x", i, dir, op, src, dst, cnt)
		runBulkPair(t, tag, bulkSrc(dir, op, src, dst, cnt))
	}
}

// TestBulkStringFaultEquivalence drives the copy off the end of the
// mapped data region: the bulk path must fault at exactly the same
// element, with identical partial progress, as the reference loop.
func TestBulkStringFaultEquivalence(t *testing.T) {
	// buf ends 0x4000 bytes before the end of the mapped region is
	// irrelevant here — the run simply walks EDI past the mapping.
	for _, tc := range []struct {
		name string
		op   string
		dst  int
	}{
		{"movsb-off-end", "movsb", 0xFF00},
		{"stosd-off-end", "stosd", 0xFEF9},
	} {
		t.Run(tc.name, func(t *testing.T) {
			src := fmt.Sprintf(`.section data
buf: .skip 49152
.section text
go:
	cld
	mov esi, buf
	mov edi, buf+%d
	mov eax, 0x77665544
	mov ecx, 0x1000
	rep %s
	ret
`, tc.dst, tc.op)
			runBulkPair(t, tc.name, src)
		})
	}
}
