package cpu

// parityTable[i] is true when byte i has even parity (PF set).
var parityTable [256]bool

func init() {
	for i := range parityTable {
		n := 0
		for b := i; b != 0; b >>= 1 {
			n += b & 1
		}
		parityTable[i] = n%2 == 0
	}
}

func (c *CPU) getFlag(f uint32) bool { return c.Eflags&f != 0 }
func (c *CPU) setFlag(f uint32, v bool) {
	if v {
		c.Eflags |= f
	} else {
		c.Eflags &^= f
	}
}

// szp sets SF, ZF and PF from a result of the given width.
func (c *CPU) szp(res uint32, w8 bool) {
	if w8 {
		res &= 0xFF
		c.setFlag(FlagSF, res&0x80 != 0)
	} else {
		c.setFlag(FlagSF, res&0x80000000 != 0)
	}
	c.setFlag(FlagZF, res == 0)
	c.setFlag(FlagPF, parityTable[res&0xFF])
}

// flagsLogic sets flags for AND/OR/XOR/TEST: CF=OF=0, SZP from result.
func (c *CPU) flagsLogic(res uint32, w8 bool) {
	c.setFlag(FlagCF, false)
	c.setFlag(FlagOF, false)
	c.setFlag(FlagAF, false)
	c.szp(res, w8)
}

// flagsAdd sets flags for dst = a + b (+carryIn).
func (c *CPU) flagsAdd(a, b, res uint32, w8 bool, carryIn uint32) {
	var signBit, mask uint32 = 0x80000000, 0xFFFFFFFF
	if w8 {
		signBit, mask = 0x80, 0xFF
		a &= mask
		b &= mask
	}
	r := res & mask
	// Carry: unsigned overflow.
	c.setFlag(FlagCF, uint64(a)+uint64(b)+uint64(carryIn) > uint64(mask))
	// Overflow: operands same sign, result different sign.
	c.setFlag(FlagOF, (a^r)&(b^r)&signBit != 0)
	c.setFlag(FlagAF, (a^b^r)&0x10 != 0)
	c.szp(r, w8)
}

// flagsSub sets flags for dst = a - b (-borrowIn).
func (c *CPU) flagsSub(a, b, res uint32, w8 bool, borrowIn uint32) {
	var signBit, mask uint32 = 0x80000000, 0xFFFFFFFF
	if w8 {
		signBit, mask = 0x80, 0xFF
		a &= mask
		b &= mask
	}
	r := res & mask
	c.setFlag(FlagCF, uint64(b)+uint64(borrowIn) > uint64(a))
	c.setFlag(FlagOF, (a^b)&(a^r)&signBit != 0)
	c.setFlag(FlagAF, (a^b^r)&0x10 != 0)
	c.szp(r, w8)
}

// condTrue evaluates a condition code against EFLAGS.
func (c *CPU) condTrue(cc uint8) bool {
	var v bool
	switch cc >> 1 {
	case 0: // O
		v = c.getFlag(FlagOF)
	case 1: // B
		v = c.getFlag(FlagCF)
	case 2: // E
		v = c.getFlag(FlagZF)
	case 3: // BE
		v = c.getFlag(FlagCF) || c.getFlag(FlagZF)
	case 4: // S
		v = c.getFlag(FlagSF)
	case 5: // P
		v = c.getFlag(FlagPF)
	case 6: // L
		v = c.getFlag(FlagSF) != c.getFlag(FlagOF)
	case 7: // LE
		v = c.getFlag(FlagZF) || c.getFlag(FlagSF) != c.getFlag(FlagOF)
	}
	if cc&1 != 0 {
		return !v
	}
	return v
}
