package cpu

import (
	"errors"

	"repro/internal/ia32"
	"repro/internal/mem"
)

// Superblock trace execution: straight-line instruction runs are
// decoded once into cached blocks and executed through a tight
// dispatch loop. The per-instruction overheads of the single-step
// path — debug-register scan, decode-cache probe, host-return and
// stop-flag checks, cycle-budget compare — are hoisted to one check
// per block entry. The per-instruction work that remains is exactly
// the architectural work: c.exec on a predecoded instruction, plus a
// single code-generation load that catches self-modifying code
// mid-block.
//
// Correctness is by construction, not by re-verification: a block
// only ever contains instructions that cannot leave the straight
// line (every control transfer, trap, port access or string
// instruction terminates its block and is re-dispatched through the
// outer loop), so after instruction k the machine is in precisely the
// state the single-step reference would be in, and any exception
// returns with that exact state. The differential oracle in
// block_oracle_test.go enforces this equivalence on random programs.
//
// Invalidation rides the memory package's code-generation tracking at
// two granularities. The fast tag is the global CodeGen: while it is
// unchanged, every cached block is valid. When it moves — an
// injection flipped an instruction bit, a restore rolled it back —
// each block revalidates against CodePageGen of the one page it
// decodes from, so a code change on page P discards only the blocks
// on P and every other block survives whole injection runs.

// Block-cache geometry: direct-mapped on the low bits of the block's
// start EIP.
const (
	bcacheBits = 12
	bcacheSize = 1 << bcacheBits
	bcacheMask = bcacheSize - 1
)

// maxBlockInsts caps a block's length. Blocks also never extend
// across a page boundary (so one CodePageGen tag covers the whole
// block) and never include the host-return sentinel address.
const maxBlockInsts = 32

// instCycleBound is a per-instruction upper bound on the cycles
// c.exec can charge for any block-eligible instruction. The costliest
// are DIV/IDIV (1 base + 1 operand read + 10) and PUSHA/POPA (1 base
// + 8 stack accesses); string instructions are unbounded but always
// terminate a block, and a block's budget-safety margin deliberately
// excludes its last instruction (see blockSafe).
const instCycleBound = 16

// block is one decoded superblock: a straight-line instruction run
// starting at eip, ending (exclusive) at end, all within one page.
type block struct {
	eip uint32
	end uint32
	// gen is the fast validity tag: the block is valid while gen ==
	// Mem.CodeGen()+1 (the +1 keeps the zero value invalid, matching
	// the decode cache's convention). It is refreshed in place when a
	// global bump turns out not to have touched this block's page.
	gen uint64
	// pageGen is the slow revalidation tag: Mem.CodePageGen of the
	// block's page at decode time. While it is unchanged the decoded
	// bytes are unchanged, whatever the global generation did.
	pageGen uint64
	// slack is the budget-safety margin: an upper bound on the cycles
	// charged by every instruction except the last. Entering the block
	// with more than slack budget remaining guarantees the single-step
	// loop would also have reached (and started) the last instruction.
	slack uint64
	// insts holds the decoded run. Empty means a negative entry: the
	// first instruction at eip does not decode into a block (undecodable
	// bytes, a fetch fault, or a page-straddling encoding) and dispatch
	// must single-step instead of re-attempting the build.
	insts []ia32.Inst
}

// BlockStats are the block engine's lifetime counters for one CPU.
type BlockStats struct {
	// Hits counts dispatches served by a cached valid block.
	Hits uint64
	// Misses counts block builds (including negative entries).
	Misses uint64
	// Flushes counts cached blocks discarded because the code they
	// decoded actually changed (page-level invalidation).
	Flushes uint64
	// Fallbacks counts single-step dispatches taken while the block
	// engine was on: breakpoint inside the block, exhausted budget
	// margin, or an unbuildable block.
	Fallbacks uint64
}

// BlockStats returns the block engine's counters.
func (c *CPU) BlockStats() BlockStats { return c.bstats }

// isBlockTerminator reports whether op must end its block. Control
// transfers leave the straight line; traps and HLT never fall
// through; IN/OUT reach host hooks that may remap memory (the MMU
// ports) behind the decoded run; string instructions may retire a
// partial REP chunk without advancing EIP. All of these are legal as
// a block's final instruction — dispatch revalidates before the next
// block — but nothing may be decoded past them.
func isBlockTerminator(op ia32.Op) bool {
	switch op {
	case ia32.OpJcc, ia32.OpJmp, ia32.OpCall, ia32.OpRet, ia32.OpLret,
		ia32.OpInt3, ia32.OpInt, ia32.OpInto, ia32.OpHlt, ia32.OpUd2,
		ia32.OpIn, ia32.OpOut,
		ia32.OpMovs, ia32.OpStos, ia32.OpLods, ia32.OpScas, ia32.OpCmps:
		return true
	}
	return false
}

// blockFor returns the block starting at eip, building it on a miss.
// The result always has eip as its start; it may be a negative entry
// (no insts).
func (c *CPU) blockFor(eip uint32) *block {
	if c.bcache == nil {
		c.bcache = make([]*block, bcacheSize)
	}
	slot := &c.bcache[eip&bcacheMask]
	gen := c.Mem.CodeGen() + 1
	if b := *slot; b != nil && b.eip == eip {
		if b.gen == gen {
			c.bstats.Hits++
			return b
		}
		// The global generation moved since this block was validated.
		// If the bump happened on other pages the decode is still
		// exact: refresh the fast tag and keep the block.
		if c.Mem.CodePageGen(eip>>blockPageShift) == b.pageGen {
			b.gen = gen
			c.bstats.Hits++
			return b
		}
		c.bstats.Flushes++
	}
	b := c.buildBlock(eip, gen)
	*slot = b
	c.bstats.Misses++
	return b
}

// blockPageShift mirrors the memory page geometry (mem.PageSize).
const blockPageShift = 12

// buildBlock decodes the straight-line run starting at eip. It stops
// at block terminators, the page boundary, the host-return sentinel,
// and maxBlockInsts.
func (c *CPU) buildBlock(eip uint32, gen uint64) *block {
	b := &block{
		eip:     eip,
		end:     eip,
		gen:     gen,
		pageGen: c.Mem.CodePageGen(eip >> blockPageShift),
	}
	// The run may not extend past the block's page (one pageGen tag
	// covers it) nor reach the host-return sentinel (the run loop must
	// observe that EIP before executing anything there).
	limit := (uint64(eip) &^ (mem.PageSize - 1)) + mem.PageSize
	if eip>>blockPageShift == HostReturn>>blockPageShift && uint64(HostReturn) < limit {
		limit = uint64(HostReturn)
	}
	at := uint64(eip)
	for len(b.insts) < maxBlockInsts && at < limit {
		n, err := c.Mem.Fetch(uint32(at), c.fetch[:])
		if err != nil {
			break
		}
		inst, derr := ia32.Decode(c.fetch[:n])
		if derr != nil {
			break
		}
		if at+uint64(inst.Len) > limit {
			// The encoding straddles the page end (or the sentinel):
			// leave it to the single-step path.
			break
		}
		b.insts = append(b.insts, inst)
		at += uint64(inst.Len)
		if isBlockTerminator(inst.Op) {
			break
		}
	}
	b.end = uint32(at)
	if n := len(b.insts); n > 0 {
		b.slack = uint64(n-1) * instCycleBound
	}
	return b
}

// blockSafe reports whether b can be executed whole right now with
// behavior identical to single-stepping it:
//
//   - Budget: the single-step loop re-checks the cycle limit before
//     every instruction. Requiring more than b.slack remaining budget
//     guarantees every instruction of the block would also have
//     started under per-instruction checking (slack bounds the cycles
//     of all instructions but the last; whether the last one finishes
//     over the limit is irrelevant — it would have started, and cycle
//     charging inside an instruction is unconditional either way).
//   - Breakpoints: an armed debug register inside [eip, end) could
//     fire mid-block; fall back so the per-instruction scan runs.
//     Registers outside the range can never match any EIP the block
//     visits, so the hoisted range check is exact, not approximate.
func (c *CPU) blockSafe(b *block, limit uint64) bool {
	if limit-c.Cycles <= b.slack {
		return false
	}
	if c.OnBreakpoint != nil && c.DREnabled != [4]bool{} {
		size := b.end - b.eip
		for i := 0; i < 4; i++ {
			if c.DREnabled[i] && c.DR[i]-b.eip < size {
				return false
			}
		}
	}
	return true
}

// execBlock runs the block's instructions in order, returning the
// number executed and the first error. A non-terminator instruction
// always either faults (leaving state at that instruction's start,
// exactly like Step) or advances EIP to the next decoded instruction,
// so no per-instruction EIP bookkeeping is needed. The one mid-block
// hazard is code changing under the block (a store into an executable
// page); the codeGen compare catches it at the following instruction
// boundary — the same boundary at which the single-step path would
// redecode — and bails out to the dispatcher, which revalidates at
// the current EIP.
func (c *CPU) execBlock(b *block) (int, error) {
	want := b.gen - 1 // the Mem.CodeGen() value the block is valid against
	for k := range b.insts {
		if c.Mem.CodeGen() != want {
			return k, nil
		}
		if err := c.exec(&b.insts[k]); err != nil {
			return k, err
		}
	}
	return len(b.insts), nil
}

// runBlocks is Run's block-engine loop (budget, stop-flag and
// host-return semantics identical to runStep; see Run).
func (c *CPU) runBlocks(limit uint64) (StopReason, *Exception) {
	poll := 0
	for c.Cycles < limit {
		if c.EIP == HostReturn {
			return StopReturned, nil
		}
		if poll >= stopPollInterval {
			poll = 0
			if c.Stop != nil && c.Stop.Load() {
				return StopInterrupted, nil
			}
		}
		var err error
		if b := c.blockFor(c.EIP); len(b.insts) > 0 && c.blockSafe(b, limit) {
			var n int
			n, err = c.execBlock(b)
			poll += n
		} else {
			c.bstats.Fallbacks++
			err = c.Step()
			poll++
		}
		if err == nil {
			continue
		}
		if errors.Is(err, ErrHalted) {
			return StopHalted, nil
		}
		var exc *Exception
		if errors.As(err, &exc) {
			return StopException, exc
		}
		return StopException, &Exception{Vector: VecDF, EIP: c.EIP}
	}
	if c.EIP == HostReturn {
		return StopReturned, nil
	}
	return StopBudget, nil
}
