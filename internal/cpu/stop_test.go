package cpu_test

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cpu"
)

// TestStopFlagInterruptsLoop: raising the cooperative stop flag from
// another goroutine halts an otherwise-unbounded loop with
// StopInterrupted — the mechanism the wall-clock watchdog uses to
// surface Go-level livelocks that never exhaust the cycle budget.
func TestStopFlagInterruptsLoop(t *testing.T) {
	m := build(t, `
spin:
.Lagain:
	jmp .Lagain
`)
	var stop atomic.Bool
	m.cpu.Stop = &stop
	tm := time.AfterFunc(10*time.Millisecond, func() { stop.Store(true) })
	defer tm.Stop()
	reason, exc := m.call(t, "spin", 1<<62)
	if reason != cpu.StopInterrupted || exc != nil {
		t.Fatalf("stop = %v, exc = %v, want StopInterrupted", reason, exc)
	}
}

// TestStopFlagCheckedAtEntry: a livelock made of many short host calls
// never reaches the in-loop poll interval, so Run must honor an
// already-raised flag before executing a single instruction.
func TestStopFlagCheckedAtEntry(t *testing.T) {
	m := build(t, `
nop_fn:
	ret
`)
	var stop atomic.Bool
	stop.Store(true)
	m.cpu.Stop = &stop
	cycles := m.cpu.Cycles
	reason, exc := m.call(t, "nop_fn", 1<<62)
	if reason != cpu.StopInterrupted || exc != nil {
		t.Fatalf("stop = %v, exc = %v, want StopInterrupted", reason, exc)
	}
	if m.cpu.Cycles != cycles {
		t.Fatalf("executed %d cycles with stop already raised", m.cpu.Cycles-cycles)
	}

	// Clearing the flag lets the same CPU run normally again.
	stop.Store(false)
	if reason, exc := m.call(t, "nop_fn", 1<<62); reason != cpu.StopReturned || exc != nil {
		t.Fatalf("after clear: stop = %v, exc = %v, want StopReturned", reason, exc)
	}
}
