// Severity: reproduce the paper's §7.1 crash-severity analysis by
// driving campaign C (valid-but-incorrect branch) over the file-system
// write paths until the on-disk file system is damaged — then show the
// fsck verdict and the boot check, exactly how the study separated
// "normal reboot", "manual fsck" and "reformat everything".
package main

import (
	"fmt"
	"math/rand"
	"os"

	"repro/internal/disk"
	"repro/internal/ext2"
	"repro/internal/inject"
	"repro/internal/unixbench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "severity:", err)
		os.Exit(1)
	}
}

func run() error {
	runner, err := inject.NewRunner(unixbench.Suite(1))
	if err != nil {
		return err
	}
	prog := runner.M.Prog
	rng := rand.New(rand.NewSource(5))

	// The paper's Table 5: most severe crashes clustered in fs and mm
	// write paths, almost all under campaign C.
	writePaths := []string{
		"generic_commit_write", "ext2_alloc_block", "ext2_new_inode",
		"ext2_add_entry", "ext2_truncate", "ext2_get_block",
		"generic_file_write", "link_path_walk", "open_namei", "sys_unlink",
	}

	counts := map[inject.Severity]int{}
	shown := 0
	for _, name := range writePaths {
		fn, ok := prog.FuncByName(name)
		if !ok {
			continue
		}
		targets, err := inject.EnumerateTargets(prog, fn, inject.CampaignC, rng)
		if err != nil {
			return err
		}
		for _, t := range targets {
			res, _ := runner.RunTarget(inject.CampaignC, t)
			if !res.Activated {
				continue
			}
			counts[res.Severity]++
			if res.Severity < inject.SeveritySevere || shown >= 3 {
				continue
			}
			shown++
			fmt.Printf("=== %v damage: reversed branch in %s+%#x (outcome %v) ===\n",
				res.Severity, name, t.InstAddr-fn.Addr, res.Outcome)

			// Show what fsck sees on the post-run disk, as the study's
			// recovery procedure would.
			img, err := runner.M.DiskImage()
			if err != nil {
				return err
			}
			dev, err := disk.FromImage(img)
			if err != nil {
				return err
			}
			rep := ext2.Check(dev)
			fmt.Printf("fsck: %v\n", rep.Status)
			for i, p := range rep.Problems {
				if i >= 5 {
					fmt.Printf("  ... and %d more problems\n", len(rep.Problems)-5)
					break
				}
				fmt.Printf("  %s\n", p)
			}
			if rep.Status == ext2.StatusFixable {
				if err := ext2.Repair(dev); err == nil {
					fmt.Println("fsck repaired the file system (severe: manual intervention, >5 min)")
				}
			}
			if fs2, err := ext2.Open(dev); err == nil {
				if berr := fs2.VerifyBoot(runner.M.BootManifest); berr != nil {
					fmt.Printf("boot check: %v\n", berr)
					fmt.Println("-> most severe: reformat + reinstall (~1 hour of downtime)")
				} else {
					fmt.Println("boot check: system comes back up")
				}
			}
			fmt.Println()
		}
	}

	fmt.Println("severity distribution over the fs write paths (campaign C):")
	fmt.Printf("  no on-disk damage:       %d\n", counts[inject.SeverityNone])
	fmt.Printf("  normal (auto reboot):    %d\n", counts[inject.SeverityNormal])
	fmt.Printf("  severe (manual fsck):    %d\n", counts[inject.SeveritySevere])
	fmt.Printf("  most severe (reformat):  %d\n", counts[inject.SeverityMost])
	fmt.Println()
	fmt.Println("The paper: 9 of 9,600 dumped crashes required reformatting; to meet")
	fmt.Println("five-nines availability one can only afford one such failure in 12 years.")
	return nil
}
