// Quickstart: boot the simulated kernel, run a workload, then inject a
// single bit flip into a hot kernel function and watch the crash — the
// study's experiment, end to end, in one page of code.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"repro/internal/analysis"
	"repro/internal/ia32"
	"repro/internal/inject"
	"repro/internal/unixbench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// The runner boots the machine, performs the fault-free golden run
	// (recording the reference outputs and disk state), and snapshots
	// the pristine system.
	fmt.Println("booting simulated Linux-like kernel and running UnixBench golden run...")
	runner, err := inject.NewRunner(unixbench.Suite(1))
	if err != nil {
		return err
	}
	fmt.Printf("golden run took %d simulated cycles\n\n", runner.GoldenCycles)

	// Target the paper's Figure 5 function: do_generic_file_read.
	prog := runner.M.Prog
	fn, ok := prog.FuncByName("do_generic_file_read")
	if !ok {
		return fmt.Errorf("no do_generic_file_read")
	}
	fmt.Printf("target: %s (subsystem %s, %d bytes at %#x)\n\n",
		fn.Name, fn.Section, fn.Size, fn.Addr)

	// Enumerate campaign-A injections (a random bit in each byte of
	// every non-branch instruction) and run until one crashes.
	rng := rand.New(rand.NewSource(42))
	targets, err := inject.EnumerateTargets(prog, fn, inject.CampaignA, rng)
	if err != nil {
		return err
	}
	fmt.Printf("campaign A enumerates %d single-bit injections in this function\n\n", len(targets))

	for _, t := range targets {
		res, _ := runner.RunTarget(inject.CampaignA, t)
		if res.Outcome != inject.OutcomeCrash {
			continue
		}
		fmt.Printf("injection at %s+%#x, byte %d, bit %d:\n\n",
			fn.Name, t.InstAddr-fn.Addr, t.ByteOff, t.Bit)
		fmt.Printf("original instruction stream:\n%s\n",
			ia32.DisasmBytes(res.OrigWindow, t.InstAddr, 3))
		fmt.Printf("corrupted instruction stream:\n%s\n",
			ia32.DisasmBytes(res.CorruptWindow, t.InstAddr, 4))
		fmt.Printf("%s\n\n", res.Crash.Oops())
		fmt.Printf("outcome: %v\n", res.Outcome)
		fmt.Printf("crash latency: %d cycles after the corrupted instruction ran\n", res.Latency)
		fmt.Printf("crashed in subsystem: %s (injected into %s)\n", res.CrashSub, res.InjectedSub())
		fmt.Printf("crash severity: %v\n", res.Severity)
		fmt.Println()
		fmt.Println(analysis.RenderCase(&res))
		return nil
	}
	return fmt.Errorf("no crash found (unexpected for a hot function)")
}
