// Propagation: reproduce the paper's Figure 8 analysis for the fs
// subsystem — inject errors into fs functions and measure where the
// resulting crashes land. The dominant cross-subsystem path in the
// paper is fs -> kernel.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"repro/internal/analysis"
	"repro/internal/inject"
	"repro/internal/unixbench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "propagation:", err)
		os.Exit(1)
	}
}

func run() error {
	runner, err := inject.NewRunner(unixbench.Suite(1))
	if err != nil {
		return err
	}
	prog := runner.M.Prog
	rng := rand.New(rand.NewSource(8))

	fmt.Println("injecting campaign-A errors into every fs function...")
	var results []inject.Result
	for _, fn := range prog.Funcs {
		if fn.Section != "fs" {
			continue
		}
		targets, err := inject.EnumerateTargets(prog, fn, inject.CampaignA, rng)
		if err != nil {
			return err
		}
		// A light subsample keeps this example quick.
		for i := 0; i < len(targets); i += 4 {
			res, _ := runner.RunTarget(inject.CampaignA, targets[i])
			results = append(results, res)
			if res.Propagated() {
				fmt.Printf("  propagation: %s (fs) -> crash in %s at %s+%#x (%s)\n",
					res.Target.Func.Name, res.CrashSub,
					res.Target.Func.Name, res.Target.InstAddr-res.Target.Func.Addr,
					res.Crash.Cause)
			}
		}
	}

	prop := analysis.Propagation(results)
	fmt.Println()
	if row := prop["fs"]; row != nil {
		fmt.Print(analysis.RenderPropagation(row))
		fmt.Println()
		fmt.Printf("The paper found ~90%% of fs crashes stay in fs, with fs -> kernel\n")
		fmt.Printf("the primary escape path; here %.1f%% of %d crashes left fs.\n",
			100*row.PropagationRate(), row.Total)
	} else {
		fmt.Println("no crashes at all — increase the sample")
	}
	return nil
}
