// Assertions: the paper's §8 proposal made concrete. The study traced
// campaign C's dominant invalid-opcode crashes to kernel BUG()
// assertions, and proposed *adding* assertions at strategic locations
// to detect errors before they propagate. This example runs the same
// reversed-branch injections against the normal kernel and against a
// build with every assertion stripped, and shows what the assertions
// were buying.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"repro/internal/dump"
	"repro/internal/inject"
	"repro/internal/unixbench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "assertions:", err)
		os.Exit(1)
	}
}

type tally struct {
	assertCrash int // invalid-opcode crashes (assertions firing)
	otherCrash  int
	hangs       int
	fsv         int
	silent      int
}

func sweep(runner *inject.Runner, fns []string) (tally, error) {
	var t tally
	rng := rand.New(rand.NewSource(77))
	for _, name := range fns {
		fn, ok := runner.M.Prog.FuncByName(name)
		if !ok {
			return t, fmt.Errorf("no function %s", name)
		}
		targets, err := inject.EnumerateTargets(runner.M.Prog, fn, inject.CampaignC, rng)
		if err != nil {
			return t, err
		}
		for _, tg := range targets {
			res, _ := runner.RunTarget(inject.CampaignC, tg)
			switch res.Outcome {
			case inject.OutcomeCrash:
				if res.Crash.Cause == dump.CauseInvalidOpcode {
					t.assertCrash++
				} else {
					t.otherCrash++
				}
			case inject.OutcomeHang:
				t.hangs++
			case inject.OutcomeFailSilence:
				t.fsv++
			case inject.OutcomeNotManifested:
				t.silent++
			}
		}
	}
	return t, nil
}

func run() error {
	fns := []string{
		"getblk", "iput", "brelse", "ext2_find_entry", "pipe_read",
		"do_generic_file_read", "zap_page_range", "wake_up_process",
		"generic_commit_write", "iget",
	}
	fmt.Println("campaign C (valid-but-incorrect branch) over assertion-bearing functions")
	fmt.Println()

	ws := unixbench.Suite(1)
	normal, err := inject.NewRunner(ws)
	if err != nil {
		return err
	}
	withAsserts, err := sweep(normal, fns)
	if err != nil {
		return err
	}

	ablated, err := inject.NewRunnerWithOptions(ws, inject.RunnerOptions{DisableAssertions: true})
	if err != nil {
		return err
	}
	n, err := inject.DisableAssertions(ablated.M)
	if err != nil {
		return err
	}
	_ = n // already stripped by the option; a second pass finds none
	without, err := sweep(ablated, fns)
	if err != nil {
		return err
	}

	fmt.Printf("%-34s %14s %14s\n", "outcome", "with BUG()", "without BUG()")
	rows := []struct {
		name string
		a, b int
	}{
		{"assertion crash (invalid opcode)", withAsserts.assertCrash, without.assertCrash},
		{"other crash", withAsserts.otherCrash, without.otherCrash},
		{"hang", withAsserts.hangs, without.hangs},
		{"fail silence violation", withAsserts.fsv, without.fsv},
		{"not manifested", withAsserts.silent, without.silent},
	}
	for _, r := range rows {
		fmt.Printf("%-34s %14d %14d\n", r.name, r.a, r.b)
	}
	fmt.Println()
	fmt.Println("Stripping the assertions does not make the errors disappear — it")
	fmt.Println("converts immediately-detected failures into silent wrong behavior.")
	fmt.Println("That conversion is exactly why the paper proposes strategic assertion")
	fmt.Println("placement to detect errors and prevent propagation (§8, conclusions).")
	return nil
}
