// Case study: a walk-through of the paper's Figure 5 — a single-bit
// error in do_generic_file_read() corrupting the end_index
// computation (i_size >> PAGE_SHIFT via mov/shrd), which makes the
// read loop exit prematurely and can silently damage file contents.
package main

import (
	"fmt"
	"os"

	"repro/internal/ia32"
	"repro/internal/inject"
	"repro/internal/unixbench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "casestudy:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("=== Figure 5 case study: do_generic_file_read ===")
	runner, err := inject.NewRunner(unixbench.Suite(1))
	if err != nil {
		return err
	}
	prog := runner.M.Prog
	fn, _ := prog.FuncByName("do_generic_file_read")

	// Locate the mov/shrd pair that computes
	//     end_index = inode->i_size >> PAGE_SHIFT
	// just like the paper restored it with kdb at 0xc0130a33.
	sec := prog.Sections[fn.Section]
	code := sec.Code[fn.Addr-sec.Base : fn.Addr-sec.Base+fn.Size]
	var shrdAddr, movAddr uint32
	var prevAddr, prev2Addr uint32
	for off := 0; off < len(code); {
		in, err := ia32.Decode(code[off:])
		if err != nil {
			return err
		}
		addr := fn.Addr + uint32(off)
		if in.Op == ia32.OpShrd && shrdAddr == 0 {
			shrdAddr = addr
			movAddr = prev2Addr // the mov that loads inode->i_size
		}
		prev2Addr = prevAddr
		prevAddr = addr
		off += int(in.Len)
	}
	if shrdAddr == 0 {
		return fmt.Errorf("no shrd found in do_generic_file_read")
	}
	fmt.Printf("\nend_index computation found (as the paper's kdb trace showed):\n")
	win, _ := runner.M.Mem.ReadRaw(movAddr, 16)
	fmt.Println(ia32.DisasmBytes(win, movAddr, 4))

	// Inject into the mov feeding the shrd: this is the paper's exact
	// scenario — "a single bit error in the mov instruction ...
	// results in reversing the value assignment ... and after
	// executing 12-bit shift, eax is set to 0".
	fmt.Println("injecting single-bit errors into the end_index computation:")
	fmt.Println()
	interesting := 0
	for byteOff := 0; byteOff < 3; byteOff++ {
		for bit := uint8(0); bit < 8; bit++ {
			t := inject.Target{
				Func: fn, InstAddr: movAddr, InstLen: 3,
				ByteOff: byteOff, Bit: bit,
			}
			res, _ := runner.RunTarget(inject.CampaignA, t)
			if !res.Activated || res.Outcome == inject.OutcomeNotManifested {
				continue
			}
			interesting++
			fmt.Printf("byte %d bit %d -> %v", byteOff, bit, res.Outcome)
			switch res.Outcome {
			case inject.OutcomeCrash:
				fmt.Printf(" (%s, latency %d cycles, severity %v)", res.Crash.Cause, res.Latency, res.Severity)
			case inject.OutcomeFailSilence:
				fmt.Printf(" (trace mismatch=%v, disk mismatch=%v, severity %v)",
					res.TraceMismatch, res.DiskMismatch, res.Severity)
				if res.Severity == inject.SeverityMost {
					fmt.Printf("\n  ^^ the paper's catastrophic case: an undetected incomplete read")
					fmt.Printf("\n     leaves the system unable to come back up without a reinstall")
				}
			}
			fmt.Println()
			if interesting >= 12 {
				break
			}
		}
		if interesting >= 12 {
			break
		}
	}
	if interesting == 0 {
		return fmt.Errorf("no manifested outcomes — target not on the executed path")
	}

	fmt.Println("\nThe paper's case 9 (Table 5): a flipped bit in this mov corrupted")
	fmt.Println("end_index, do_generic_file_read returned prematurely, and the")
	fmt.Println("incomplete read propagated to the file system — rebooting required")
	fmt.Println("reinstalling the OS.")
	return nil
}
