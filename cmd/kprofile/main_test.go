package main

import "testing"

func TestRunProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("profiles the kernel")
	}
	if err := run([]string{"-top", "5"}); err != nil {
		t.Fatalf("kprofile run: %v", err)
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
