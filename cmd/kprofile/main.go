// Command kprofile profiles the simulated kernel under the UnixBench
// workloads (the paper's Kernprof step) and prints the profile, the
// Table 1 function distribution, and the Figure 1 subsystem sizes.
//
// Usage:
//
//	kprofile [-scale N] [-cover 0.95] [-top N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/kernprof"
	"repro/internal/unixbench"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "kprofile:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("kprofile", flag.ContinueOnError)
	scale := fs.Int("scale", 1, "workload scale")
	cover := fs.Float64("cover", 0.95, "coverage fraction for the core set")
	top := fs.Int("top", 40, "functions to list (0 = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	prog, err := kernel.Assemble()
	if err != nil {
		return err
	}
	fmt.Println(core.RenderSubsystemSizes(prog))

	prof, err := kernprof.Collect(unixbench.Suite(unixbench.Scale(*scale)), 1<<40, 0)
	if err != nil {
		return err
	}
	fmt.Printf("kernel profile: %d functions, %d samples\n\n", len(prof.Funcs), prof.Total)
	fmt.Println(prof.Render(*top))

	rows, coreFns := prof.Table1(*cover)
	fmt.Printf("Table 1: function distribution among kernel subsystems (core = %.0f%% coverage)\n", 100**cover)
	fmt.Printf("%-10s %20s %14s\n", "Subsystem", "Profiled functions", "In core set")
	tp, tc := 0, 0
	for _, r := range rows {
		fmt.Printf("%-10s %20d %14d\n", r.Section, r.Profiled, r.InCore)
		tp += r.Profiled
		tc += r.InCore
	}
	fmt.Printf("%-10s %20d %14d\n", "Total", tp, tc)
	fmt.Printf("\ncore set (%d functions):\n", len(coreFns))
	for _, f := range coreFns {
		fmt.Printf("  %-28s %-8s %6.2f%%\n", f.Name, f.Section, f.Pct)
	}
	return nil
}
