package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/inject"
	"repro/internal/journal"
)

func TestBadFlags(t *testing.T) {
	if err := run([]string{"-campaigns", "X"}); err == nil ||
		!strings.Contains(err.Error(), "unknown campaign") {
		t.Fatalf("err = %v", err)
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestResumeFlagHandling(t *testing.T) {
	for _, bad := range [][]string{
		{"-resume", "j", "-seed", "7"},
		{"-resume", "j", "-campaigns", "A"},
		{"-resume", "j", "-journal", "k"},
		{"-resume", "j", "-no-assertions"},
	} {
		if err := run(bad); err == nil || !strings.Contains(err.Error(), "conflicts with -resume") {
			t.Fatalf("run(%v) = %v, want conflict error", bad, err)
		}
	}
	// Missing journal file.
	if err := run([]string{"-resume", filepath.Join(t.TempDir(), "nope")}); err == nil {
		t.Fatal("missing journal accepted")
	}
}

func TestFaultToleranceFlags(t *testing.T) {
	if err := run([]string{"-run-timeout", "bogus"}); err == nil {
		t.Fatal("bad -run-timeout accepted")
	}
	// -run-timeout and -max-retries are operational knobs, not
	// result-affecting ones: they must be allowed alongside -resume
	// (the only failure here is the missing journal).
	err := run([]string{
		"-resume", filepath.Join(t.TempDir(), "nope"),
		"-run-timeout", "30s", "-max-retries", "0",
	})
	if err == nil {
		t.Fatal("missing journal accepted")
	}
	if strings.Contains(err.Error(), "conflicts with -resume") {
		t.Fatalf("err = %v; -run-timeout/-max-retries must not conflict with -resume", err)
	}
}

func TestTinyStudyEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs injections")
	}
	out := t.TempDir() + "/r.json.gz"
	err := run([]string{
		"-q", "-campaigns", "C", "-max-funcs", "3", "-max-targets", "2",
		"-out", out,
	})
	if err != nil {
		t.Fatalf("tiny study: %v", err)
	}
}

// TestJournalAndResumeEndToEnd: a journaled study and a -resume of
// that (already complete) journal save byte-identical result sets —
// the resume path restores every flag from the journal header and
// reuses every journaled result.
func TestJournalAndResumeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs injections")
	}
	dir := t.TempDir()
	jpath := filepath.Join(dir, "journal")
	out1 := filepath.Join(dir, "r1.json.gz")
	out2 := filepath.Join(dir, "r2.json.gz")

	err := run([]string{
		"-q", "-campaigns", "C", "-max-funcs", "3", "-max-targets", "2",
		"-journal", jpath, "-out", out1,
	})
	if err != nil {
		t.Fatalf("journaled study: %v", err)
	}
	j, err := journal.Read(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if !j.Complete() || j.Trailer == nil {
		t.Fatalf("journal incomplete (complete=%v trailer=%v)", j.Complete(), j.Trailer != nil)
	}
	if j.Header.Campaigns != "C" || j.Header.MaxFuncsPerCampaign != 3 {
		t.Fatalf("header = %+v", j.Header)
	}

	// Resume the complete journal (with a different worker count —
	// workers never change results). Everything is skipped.
	if err := run([]string{"-q", "-resume", jpath, "-workers", "2", "-out", out2}); err != nil {
		t.Fatalf("resume: %v", err)
	}
	b1, err := os.ReadFile(out1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(out2)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatal("resumed result set differs from the original run")
	}
}

func TestListModels(t *testing.T) {
	var out bytes.Buffer
	printModels(&out)
	got := out.String()
	for _, name := range inject.ModelNames() {
		if !strings.Contains(got, name) {
			t.Fatalf("-list-models misses %q:\n%s", name, got)
		}
	}
	// Non-PC-keyed models advertise why checkpointing is off.
	if !strings.Contains(got, "checkpoint") {
		t.Fatalf("-list-models misses checkpoint status:\n%s", got)
	}
	if err := run([]string{"-list-models"}); err != nil {
		t.Fatalf("-list-models: %v", err)
	}
}

func TestUnknownFaultModelFailsFast(t *testing.T) {
	err := run([]string{"-fault-model", "cosmic-ray"})
	if err == nil {
		t.Fatal("unknown fault model accepted")
	}
	// The error itself lists the registry so the user never needs a
	// second command.
	for _, name := range inject.ModelNames() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("unknown-model error misses %q: %v", name, err)
		}
	}
}

// TestModelJournalResumeEndToEnd drives each non-default model through
// the CLI: a tiny journaled study, then a -resume of the complete
// journal, must save byte-identical result sets — and the journal must
// carry the model tag so the resume re-resolves the right model.
func TestModelJournalResumeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs injections")
	}
	for _, name := range inject.ModelNames() {
		if name == inject.ModelBitflip {
			continue // pinned by TestJournalAndResumeEndToEnd
		}
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			jpath := filepath.Join(dir, "journal")
			out1 := filepath.Join(dir, "r1.json.gz")
			out2 := filepath.Join(dir, "r2.json.gz")
			err := run([]string{
				"-q", "-fault-model", name, "-max-funcs", "2", "-max-targets", "1",
				"-journal", jpath, "-out", out1,
			})
			if err != nil {
				t.Fatalf("%s study: %v", name, err)
			}
			j, err := journal.Read(jpath)
			if err != nil {
				t.Fatal(err)
			}
			if !j.Complete() {
				t.Fatal("journal incomplete")
			}
			if j.Header.FaultModel != name {
				t.Fatalf("journal header model = %q, want %q", j.Header.FaultModel, name)
			}
			if err := run([]string{"-q", "-resume", jpath, "-out", out2}); err != nil {
				t.Fatalf("resume: %v", err)
			}
			b1, err := os.ReadFile(out1)
			if err != nil {
				t.Fatal(err)
			}
			b2, err := os.ReadFile(out2)
			if err != nil {
				t.Fatal(err)
			}
			if string(b1) != string(b2) {
				t.Fatalf("%s: resumed result set differs from the original run", name)
			}
		})
	}
}

// -resume must reject a -fault-model override: the model is part of
// the journal's identity.
func TestResumeRejectsModelOverride(t *testing.T) {
	err := run([]string{"-resume", "j", "-fault-model", "syscall"})
	if err == nil || !strings.Contains(err.Error(), "conflicts with -resume") {
		t.Fatalf("err = %v, want conflict error", err)
	}
}
