package main

import (
	"strings"
	"testing"
)

func TestBadFlags(t *testing.T) {
	if err := run([]string{"-campaigns", "X"}); err == nil ||
		!strings.Contains(err.Error(), "unknown campaign") {
		t.Fatalf("err = %v", err)
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestTinyStudyEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs injections")
	}
	out := t.TempDir() + "/r.json.gz"
	err := run([]string{
		"-q", "-campaigns", "C", "-max-funcs", "3", "-max-targets", "2",
		"-out", out,
	})
	if err != nil {
		t.Fatalf("tiny study: %v", err)
	}
}
