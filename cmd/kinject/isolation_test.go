package main

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/journal"
)

// TestHelperKinjectWorker is not a test: re-invoked as a subprocess,
// it serves real injections as a kinject worker over stdin/stdout.
func TestHelperKinjectWorker(t *testing.T) {
	if os.Getenv("KINJECT_WORKER_HELPER") == "" {
		return
	}
	if err := run([]string{"-worker"}); err != nil {
		fmt.Fprintln(os.Stderr, "worker helper:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// TestHelperKinjectMain is not a test: re-invoked as a subprocess, it
// runs a full kinject invocation (args from KINJECT_ARGS) with worker
// subprocesses pointed back at this binary — the victim process for
// the SIGKILL crash-recovery test.
func TestHelperKinjectMain(t *testing.T) {
	if os.Getenv("KINJECT_MAIN_HELPER") == "" {
		return
	}
	workerCommand = helperWorkerCommand
	if err := run(strings.Fields(os.Getenv("KINJECT_ARGS"))); err != nil {
		fmt.Fprintln(os.Stderr, "main helper:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

func helperWorkerCommand() *exec.Cmd {
	cmd := exec.Command(os.Args[0], "-test.run=TestHelperKinjectWorker$")
	cmd.Env = append(os.Environ(), "KINJECT_WORKER_HELPER=1")
	return cmd
}

// useHelperWorkers points the supervisor at this test binary for the
// duration of one test.
func useHelperWorkers(t *testing.T) {
	t.Helper()
	orig := workerCommand
	workerCommand = helperWorkerCommand
	t.Cleanup(func() { workerCommand = orig })
}

func TestIsolationFlagValidation(t *testing.T) {
	if err := run([]string{"-isolation", "thread"}); err == nil ||
		!strings.Contains(err.Error(), "unknown -isolation") {
		t.Fatalf("err = %v", err)
	}
	if err := run([]string{"-chaos-kill", "0.5"}); err == nil ||
		!strings.Contains(err.Error(), "requires -isolation=process") {
		t.Fatalf("err = %v", err)
	}
}

// The acceptance bar for process isolation: the same seed produces a
// byte-identical result set whether injections run in-process or in
// supervised worker subprocesses — serial and parallel.
func TestProcessIsolationParity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs injections in subprocesses")
	}
	useHelperWorkers(t)
	dir := t.TempDir()
	study := []string{"-q", "-campaigns", "C", "-max-funcs", "3", "-max-targets", "2"}

	ref := filepath.Join(dir, "inproc.json.gz")
	if err := run(append(study, "-out", ref)); err != nil {
		t.Fatalf("inproc: %v", err)
	}
	want, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name string
		args []string
	}{
		{"serial", []string{"-isolation", "process"}},
		{"parallel", []string{"-isolation", "process", "-workers", "2"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			out := filepath.Join(dir, tc.name+".json.gz")
			if err := run(append(append(study, tc.args...), "-out", out)); err != nil {
				t.Fatalf("process isolation: %v", err)
			}
			got, err := os.ReadFile(out)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatal("process-isolated result set differs from the in-process run")
			}
		})
	}
}

// Random worker kills mid-campaign must not change a single byte of
// the results or leave an unverifiable journal — chaos deaths are
// retried, not absorbed into outcomes.
func TestProcessIsolationChaosKills(t *testing.T) {
	if testing.Short() {
		t.Skip("runs injections in subprocesses")
	}
	useHelperWorkers(t)
	dir := t.TempDir()
	study := []string{"-q", "-campaigns", "C", "-max-funcs", "3", "-max-targets", "2"}

	ref := filepath.Join(dir, "inproc.json.gz")
	if err := run(append(study, "-out", ref)); err != nil {
		t.Fatalf("inproc: %v", err)
	}
	out := filepath.Join(dir, "chaos.json.gz")
	jpath := filepath.Join(dir, "chaos.jnl")
	err := run(append(study,
		"-isolation", "process", "-chaos-kill", "0.5", "-chaos-seed", "7",
		"-journal", jpath, "-out", out))
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}

	want, _ := os.ReadFile(ref)
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("chaos-killed result set differs from the in-process run")
	}
	rep, err := journal.Verify(jpath)
	if err != nil {
		t.Fatalf("journal verify: %v", err)
	}
	if rep.Corrupt != nil || !rep.Complete || rep.Truncated {
		t.Fatalf("chaos journal: %+v", rep)
	}
}

// SIGKILLing the whole supervisor process mid-campaign (the hardest
// crash: no drain, no Close, workers orphaned) must leave a journal
// that resumes to the exact uninterrupted result set, with no run
// duplicated or lost.
func TestSupervisorSIGKILLResume(t *testing.T) {
	if testing.Short() {
		t.Skip("runs injections in subprocesses")
	}
	useHelperWorkers(t)
	dir := t.TempDir()
	study := []string{"-q", "-campaigns", "ABC", "-max-funcs", "3", "-max-targets", "2"}

	ref := filepath.Join(dir, "ref.json.gz")
	if err := run(append(study, "-out", ref)); err != nil {
		t.Fatalf("reference: %v", err)
	}

	jpath := filepath.Join(dir, "victim.jnl")
	victim := exec.Command(os.Args[0], "-test.run=TestHelperKinjectMain$")
	victim.Env = append(os.Environ(),
		"KINJECT_MAIN_HELPER=1",
		"KINJECT_ARGS="+strings.Join(append(study, "-isolation", "process", "-journal", jpath), " "))
	victim.Stdout = os.Stderr
	victim.Stderr = os.Stderr
	if err := victim.Start(); err != nil {
		t.Fatal(err)
	}
	exited := make(chan struct{})
	go func() { victim.Wait(); close(exited) }()

	// Kill as soon as at least one result frame is durably flushed, so
	// the SIGKILL lands mid-journal-write with work both behind and
	// ahead of it. If the tiny study outruns the poll, the kill
	// degrades to a post-completion no-op and the assertions below
	// still must hold.
	deadline := time.After(2 * time.Minute)
poll:
	for {
		select {
		case <-exited:
			break poll
		case <-deadline:
			victim.Process.Kill()
			t.Fatal("victim made no journal progress within 2 minutes")
		case <-time.After(2 * time.Millisecond):
			if j, err := journal.Read(jpath); err == nil && j.CompletedCount() >= 1 {
				victim.Process.Signal(syscall.SIGKILL)
				break poll
			}
		}
	}
	<-exited

	// The torn journal must verify as recoverable, never corrupt.
	rep, err := journal.Verify(jpath)
	if err != nil {
		t.Fatalf("verify after SIGKILL: %v", err)
	}
	if rep.Corrupt != nil {
		t.Fatalf("SIGKILL produced mid-file corruption: %+v", rep.Corrupt)
	}

	out := filepath.Join(dir, "resumed.json.gz")
	if err := run([]string{"-q", "-resume", jpath, "-isolation", "process", "-out", out}); err != nil {
		t.Fatalf("resume: %v", err)
	}

	want, _ := os.ReadFile(ref)
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("resumed result set differs from the uninterrupted run")
	}

	// No duplicated or lost run IDs: every target ordinal appears
	// exactly once as a result or a quarantine.
	j, err := journal.Read(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if !j.Complete() {
		t.Fatal("resumed journal incomplete")
	}
	for key, total := range j.Totals {
		seen := make(map[int]int)
		for _, e := range j.Entries[key] {
			seen[e.Ordinal]++
		}
		for ord, n := range seen {
			if n > 1 {
				t.Fatalf("campaign %s ordinal %d journaled %d times", key, ord, n)
			}
		}
		for ord := 0; ord < total; ord++ {
			_, done := seen[ord]
			_, quarantined := j.Quarantine[key][ord]
			if !done && !quarantined {
				t.Fatalf("campaign %s ordinal %d lost", key, ord)
			}
			if done && quarantined {
				t.Fatalf("campaign %s ordinal %d both completed and quarantined", key, ord)
			}
		}
	}
}
