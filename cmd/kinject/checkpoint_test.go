package main

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/journal"
)

// sameJournalRecords compares two decoded journals on everything that
// carries results — header, totals, every entry in order, quarantine
// and shard marks. The metrics trailer is excluded: it snapshots
// wall-clock timing (elapsed, runs/sec, worker busy time), which no
// two runs share.
func sameJournalRecords(t *testing.T, gotPath, wantPath string) {
	t.Helper()
	got, err := journal.Read(gotPath)
	if err != nil {
		t.Fatal(err)
	}
	want, err := journal.Read(wantPath)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Header, want.Header) {
		t.Errorf("journal header differs:\ngot  %+v\nwant %+v", got.Header, want.Header)
	}
	if !reflect.DeepEqual(got.Totals, want.Totals) {
		t.Errorf("journal totals differ: got %v, want %v", got.Totals, want.Totals)
	}
	if !reflect.DeepEqual(got.Entries, want.Entries) {
		t.Error("journal result entries differ from the full-replay reference")
	}
	if !reflect.DeepEqual(got.Quarantine, want.Quarantine) {
		t.Errorf("journal quarantine differs:\ngot  %+v\nwant %+v", got.Quarantine, want.Quarantine)
	}
	if !reflect.DeepEqual(got.Marks, want.Marks) {
		t.Errorf("journal shard marks differ:\ngot  %+v\nwant %+v", got.Marks, want.Marks)
	}
}

// TestCheckpointParityAcrossIsolation is the CLI acceptance bar for
// checkpoint-at-breakpoint runs: with the flag on (the default), every
// execution mode must reproduce the -checkpoint=false reference
// byte-for-byte. Serial modes compare every journal record too;
// parallel claim order is nondeterministic, so those compare the final
// result set only. The study deliberately omits -max-targets: subsampling
// breaks the consecutive same-PC targets that actually exercise
// checkpoint reuse.
func TestCheckpointParityAcrossIsolation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs injections")
	}
	useHelperWorkers(t)
	dir := t.TempDir()
	study := []string{"-q", "-campaigns", "ABC", "-max-funcs", "1"}

	ref := filepath.Join(dir, "ref.json.gz")
	refJnl := filepath.Join(dir, "ref.jnl")
	if err := run(append(study, "-checkpoint=false", "-out", ref, "-journal", refJnl)); err != nil {
		t.Fatalf("reference (full replay): %v", err)
	}
	want, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name       string
		args       []string
		cmpJournal bool
	}{
		{"serial", nil, true},
		{"parallel", []string{"-workers", "2"}, false},
		{"process-serial", []string{"-isolation", "process"}, true},
		{"process-parallel", []string{"-isolation", "process", "-workers", "2"}, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			out := filepath.Join(dir, tc.name+".json.gz")
			jnl := filepath.Join(dir, tc.name+".jnl")
			args := append(append(append([]string{}, study...), tc.args...), "-out", out, "-journal", jnl)
			if err := run(args); err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			got, err := os.ReadFile(out)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatal("checkpointed result set differs from the full-replay reference")
			}
			rep, err := journal.Verify(jnl)
			if err != nil {
				t.Fatalf("journal verify: %v", err)
			}
			if rep.Corrupt != nil || !rep.Complete || rep.Truncated {
				t.Fatalf("journal: %+v", rep)
			}
			if tc.cmpJournal {
				sameJournalRecords(t, jnl, refJnl)
			}
		})
	}
}
