// Command kinject runs the fault/error injection campaigns of the
// study and prints every table and figure of the evaluation.
//
// Usage:
//
//	kinject [-fault-model name] [-list-models]
//	        [-campaigns ABC] [-scale N] [-seed N]
//	        [-max-targets N] [-max-funcs N] [-workers N]
//	        [-no-assertions] [-journal path] [-resume path]
//	        [-run-timeout D] [-max-retries N]
//	        [-isolation inproc|process] [-max-worker-restarts N]
//	        [-breaker-threshold N] [-heartbeat-timeout D]
//	        [-out results.json.gz] [-cpuprofile prof.out] [-q]
//
// -fault-model selects the class of injected error (default bitflip,
// the paper's instruction bit flips): syscall error-returns at the
// system_call boundary, register/data-state flips at a PC breakpoint,
// adjacent multi-bit bursts, or disk-I/O faults against the ramdisk.
// -list-models prints every registered model with its checkpoint
// compatibility. Omitting -campaigns runs the model's own campaign
// set (ABC for bitflip). Each model's results are journaled, resumed
// and reported through the same machinery; compare studies across
// models with kreport <set1> <set2> ...
//
// A full run (no -max-targets) performs every injection of all three
// campaigns — several thousand experiments — and takes minutes; use
// -max-targets for a quick subsampled study, or -workers to spread the
// injections over parallel simulated machines (identical results).
// -no-assertions runs the study against the assertion-stripped kernel
// build (the paper's §8 ablation).
//
// -journal streams every completed injection to an append-only,
// crash-safe journal while the campaigns run. An interrupted study
// (SIGINT/SIGTERM are trapped and drain gracefully; a crash or OOM
// loses at most the unflushed batch) is continued with -resume, which
// restores the original flags from the journal header, re-derives the
// same deterministic target list, skips everything already journaled,
// and produces a result set identical to an uninterrupted run.
// kreport accepts a journal wherever a results file is accepted.
//
// The harness tolerates its own faults: a Go panic or wall-clock stall
// (-run-timeout, default derived from the golden run) during one
// injection is recovered, the target is retried on freshly booted
// machines up to -max-retries times, and then quarantined — journaled,
// skipped on resume, and reported as excluded rather than polluting
// the outcome tables. Parallel workers cross-validate their golden
// (fault-free) runs against worker 0's before injecting.
//
// -isolation=process runs every injection in supervised worker
// subprocesses (kinject -worker) instead of in-process machines:
// a worker that panics the runtime, livelocks, or is OOM-killed takes
// down only itself — the supervisor kills it on a missed heartbeat
// deadline, restarts it with backoff, quarantines a target that kills
// workers -breaker-threshold consecutive times, and fails the campaign
// loudly after -max-worker-restarts abnormal deaths. Results are
// byte-identical to an inproc run with the same seed.
//
// -connect addr turns this process into a remote TCP worker for a
// kampaignd started with -listen-workers: it dials the daemon's worker
// hub, serves the same wire protocol the stdin/stdout workers speak,
// and when the connection drops — daemon restart, network partition —
// redials with exponential backoff and jitter until interrupted.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime/pprof"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/inject"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/supervisor"
	"repro/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "kinject:", err)
		os.Exit(1)
	}
}

// resumeRestoredFlags are result-affecting flags stored in the journal
// header; giving them alongside -resume would silently disagree with
// the restored configuration.
var resumeRestoredFlags = map[string]bool{
	"campaigns":     true,
	"scale":         true,
	"seed":          true,
	"max-targets":   true,
	"max-funcs":     true,
	"no-assertions": true,
	"fault-model":   true,
	"journal":       true,
}

func run(args []string) error {
	fs := flag.NewFlagSet("kinject", flag.ContinueOnError)
	campaigns := fs.String("campaigns", "", "campaigns to run (subset of ABC; default: the fault model's campaigns)")
	faultModel := fs.String("fault-model", inject.ModelBitflip, "fault model to inject (see -list-models)")
	listModels := fs.Bool("list-models", false, "list the registered fault models and exit")
	scale := fs.Int("scale", 1, "workload scale")
	seed := fs.Int64("seed", 2003, "random seed for bit selection")
	maxTargets := fs.Int("max-targets", 0, "cap injections per function (0 = all)")
	maxFuncs := fs.Int("max-funcs", 0, "cap functions per campaign (0 = all)")
	out := fs.String("out", "", "save results to this file (gzipped JSON)")
	quiet := fs.Bool("q", false, "suppress progress output")
	noAsserts := fs.Bool("no-assertions", false, "strip kernel BUG() assertions (ablation build)")
	workers := fs.Int("workers", 1, "parallel injection machines")
	journalPath := fs.String("journal", "", "stream results to this append-only journal")
	resumePath := fs.String("resume", "", "resume an interrupted study from this journal")
	runTimeout := fs.Duration("run-timeout", 0, "wall-clock watchdog per injection run (0 = derive from the golden run)")
	checkpoint := fs.Bool("checkpoint", true, "reuse a machine checkpoint captured at each activation PC across that PC's injections (results are identical either way)")
	blocks := fs.Bool("blocks", true, "execute via the CPU's superblock trace engine (results are identical either way)")
	maxRetries := fs.Int("max-retries", core.DefaultMaxRetries, "harness-fault retries before a target is quarantined")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile of the study to this file")
	isolation := fs.String("isolation", "inproc", "injection isolation: inproc (in-process machines) or process (supervised worker subprocesses)")
	workerMode := fs.Bool("worker", false, "serve injections as a worker subprocess over stdin/stdout (internal; spawned by -isolation=process)")
	connectAddr := fs.String("connect", "", "serve injections as a remote TCP worker for a kampaignd at this address (reconnects with backoff until interrupted)")
	maxWorkerRestarts := fs.Int("max-worker-restarts", supervisor.DefaultMaxRestarts, "abnormal worker deaths tolerated before the campaign fails (-isolation=process)")
	breakerThreshold := fs.Int("breaker-threshold", supervisor.DefaultBreakerThreshold, "consecutive worker deaths on one target before it is quarantined (-isolation=process)")
	heartbeatTimeout := fs.Duration("heartbeat-timeout", supervisor.DefaultHeartbeatTimeout, "worker silence tolerated mid-run before a hard kill (-isolation=process)")
	chaosKill := fs.Float64("chaos-kill", 0, "chaos test: SIGKILL the worker of roughly this fraction of runs (-isolation=process)")
	chaosSeed := fs.Int64("chaos-seed", 0, "seed for the chaos/backoff-jitter RNG (0 = nondeterministic)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *workerMode {
		return runWorker()
	}
	if *connectAddr != "" {
		return runRemoteWorker(*connectAddr)
	}
	if *listModels {
		printModels(os.Stdout)
		return nil
	}
	// Resolve the fault model before anything boots: a typo'd
	// -fault-model fails here with the full model list.
	model, err := inject.ModelByName(*faultModel)
	if err != nil {
		return err
	}
	switch *isolation {
	case "inproc", "process":
	default:
		return fmt.Errorf("unknown -isolation %q (want inproc or process)", *isolation)
	}
	if *chaosKill > 0 && *isolation != "process" {
		return fmt.Errorf("-chaos-kill requires -isolation=process")
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}

	cfg := core.DefaultConfig()
	cfg.FaultModel = model.Name()
	cfg.Scale = *scale
	cfg.Seed = *seed
	cfg.MaxTargetsPerFunc = *maxTargets
	cfg.MaxFuncsPerCampaign = *maxFuncs
	cfg.DisableAssertions = *noAsserts
	cfg.Workers = *workers
	cfg.RunTimeout = *runTimeout
	cfg.NoCheckpoint = !*checkpoint
	cfg.NoBlocks = !*blocks
	cfg.MaxRetries = *maxRetries
	if *maxRetries <= 0 {
		cfg.MaxRetries = -1 // quarantine on the first fault
	}

	var (
		jw          *journal.Writer
		prior       *journal.Journal
		campaignStr = *campaigns
		metrics     *obs.Metrics
		jwDrained   bool
	)
	// Every exit after a journal is open routes through this one drain:
	// flush the buffered batch, append the metrics trailer, fsync,
	// close. Scattered per-error Close calls used to miss paths (a bad
	// -campaigns after -resume leaked the open journal with its batch
	// undrained); the deferred call guarantees no return skips it.
	drainJournal := func() error {
		if jw == nil || jwDrained {
			return nil
		}
		jwDrained = true
		var trailer *obs.Snapshot
		if metrics != nil {
			s := metrics.Snapshot()
			trailer = &s
		}
		return jw.Close(trailer)
	}
	defer drainJournal()
	if *resumePath != "" {
		var conflict error
		fs.Visit(func(f *flag.Flag) {
			if resumeRestoredFlags[f.Name] && conflict == nil {
				conflict = fmt.Errorf("-%s conflicts with -resume (the value is restored from the journal)", f.Name)
			}
		})
		if conflict != nil {
			return conflict
		}
		w, j, err := journal.OpenAppend(*resumePath)
		if err != nil {
			return err
		}
		jw, prior = w, j
		h := j.Header
		cfg.Seed = h.Seed
		cfg.Scale = h.Scale
		cfg.MaxTargetsPerFunc = h.MaxTargetsPerFunc
		cfg.MaxFuncsPerCampaign = h.MaxFuncsPerCampaign
		cfg.DisableAssertions = h.DisableAssertions
		cfg.FaultModel = h.FaultModel // "" = bitflip (and every pre-v4 journal)
		campaignStr = h.Campaigns
		cfg.SkipCompleted = j.Completed()
		cfg.Quarantined = j.QuarantinedOrdinals()
		if model, err = inject.ModelByName(cfg.FaultModel); err != nil {
			return fmt.Errorf("resume: %w", err)
		}
	}
	if campaignStr == "" {
		// No explicit -campaigns: run the model's own campaign set.
		for _, c := range model.Campaigns() {
			campaignStr += analysis.CampaignKey(c)
		}
	}

	cs, err := analysis.ParseCampaigns(campaignStr)
	if err != nil {
		return err
	}
	cfg.Campaigns = cs

	if *journalPath != "" {
		w, err := journal.Create(*journalPath, journal.Header{
			Version:             journal.Version,
			Seed:                cfg.Seed,
			Scale:               cfg.Scale,
			Campaigns:           strings.ToUpper(campaignStr),
			MaxTargetsPerFunc:   cfg.MaxTargetsPerFunc,
			MaxFuncsPerCampaign: cfg.MaxFuncsPerCampaign,
			DisableAssertions:   cfg.DisableAssertions,
			FaultModel:          inject.ModelTag(model.Name()),
		})
		if err != nil {
			return err
		}
		jw = w
	}

	metrics = obs.New(cfg.Workers)
	cfg.Metrics = metrics
	if jw != nil {
		jw.Metrics = metrics
		cfg.Sink = jw
	}

	var cancel atomic.Bool
	cfg.Cancel = &cancel
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer func() { signal.Stop(sigc); close(sigc) }()
	go func() {
		if _, ok := <-sigc; !ok {
			return
		}
		cancel.Store(true)
		fmt.Fprintf(os.Stderr, "\ninterrupt: finishing in-flight runs and draining the journal...\n")
	}()

	// Live status line, cleared before any report output.
	statusLen := 0
	clearStatus := func() {
		if statusLen > 0 {
			fmt.Fprintf(os.Stderr, "\r%s\r", strings.Repeat(" ", statusLen))
			statusLen = 0
		}
	}
	if !*quiet {
		last := time.Now()
		cfg.Progress = func(c inject.Campaign, fn string, done, total int) {
			if done != total && time.Since(last) < 2*time.Second {
				return
			}
			last = time.Now()
			line := fmt.Sprintf("campaign %v: %d/%d (%s) | %s",
				c, done, total, fn, metrics.Snapshot().OneLine())
			if pad := statusLen - len(line); pad > 0 {
				line += strings.Repeat(" ", pad)
			}
			statusLen = len(line)
			fmt.Fprintf(os.Stderr, "\r%s", line)
		}
	}

	start := time.Now()
	s, err := core.New(cfg)
	if err != nil {
		return err
	}
	if *isolation == "process" {
		totals := make(map[string]int, len(cfg.Campaigns))
		for _, c := range cfg.Campaigns {
			ts, terr := s.Targets(c)
			if terr != nil {
				return terr
			}
			totals[analysis.CampaignKey(c)] = len(ts)
		}
		sup := supervisor.New(supervisor.Config{
			Command: workerCommand,
			Workers: cfg.Workers,
			Spec: wire.StudySpec{
				Seed:                cfg.Seed,
				Scale:               cfg.Scale,
				Campaigns:           strings.ToUpper(campaignStr),
				MaxTargetsPerFunc:   cfg.MaxTargetsPerFunc,
				MaxFuncsPerCampaign: cfg.MaxFuncsPerCampaign,
				DisableAssertions:   cfg.DisableAssertions,
				FaultModel:          inject.ModelTag(model.Name()),
				RunTimeout:          cfg.RunTimeout,
				MaxRetries:          cfg.MaxRetries,
				NoCheckpoint:        cfg.NoCheckpoint,
				NoBlocks:            cfg.NoBlocks,
			},
			GoldenFP:         s.Runner.GoldenFingerprint(),
			GoldenDisk:       fmt.Sprintf("%x", s.Runner.GoldenDiskHash()),
			Totals:           totals,
			HeartbeatTimeout: *heartbeatTimeout,
			BreakerThreshold: *breakerThreshold,
			MaxRestarts:      *maxWorkerRestarts,
			ChaosKillRate:    *chaosKill,
			ChaosSeed:        *chaosSeed,
			Metrics:          metrics,
		})
		defer sup.Close()
		s.Cfg.Remote = sup
	}
	if prior != nil {
		fmt.Printf("resuming from %s: %d injections already journaled\n",
			*resumePath, prior.CompletedCount())
		if n := prior.QuarantinedCount(); n > 0 {
			fmt.Printf("%d quarantined targets stay excluded\n", n)
		}
	}
	if model.Name() != inject.ModelBitflip {
		fmt.Printf("fault model: %s — %s\n", model.Name(), model.Describe())
		if off, reason := s.Runner.CheckpointDisabled(); off {
			fmt.Printf("checkpoint-at-breakpoint disabled: %s\n", reason)
		}
	}
	fmt.Printf("golden run: %d cycles; watchdog budget: %d cycles\n",
		s.Runner.GoldenCycles, s.Runner.Budget)
	for _, c := range cfg.Campaigns {
		fmt.Printf("campaign %v: %d target functions\n", c, len(s.FuncsFor[c]))
	}
	fmt.Println()

	runErr := s.RunAll()
	clearStatus()
	snap := metrics.Snapshot()
	if runErr != nil {
		// Drain everything already completed before reporting (the
		// deferred drain would also catch this; doing it eagerly keeps
		// the journal whole before the error text mentions it).
		drainJournal()
		if errors.Is(runErr, core.ErrCancelled) {
			if p := firstNonEmpty(*journalPath, *resumePath); p != "" {
				return fmt.Errorf("interrupted — completed runs are journaled; resume with: kinject -resume %s", p)
			}
			return fmt.Errorf("interrupted — no journal was kept; rerun with -journal to make the study resumable")
		}
		return runErr
	}
	if err := drainJournal(); err != nil {
		return err
	}
	fmt.Printf("completed in %s\n\n", time.Since(start).Round(time.Millisecond))

	fmt.Println(s.ReportTable2())
	fmt.Println(s.ReportTable1())
	fmt.Println(s.ReportFigure1())
	fmt.Println(analysis.RenderAll(s.Set))
	fmt.Println(snap.Render())

	if *out != "" {
		if err := s.Set.Save(*out); err != nil {
			return err
		}
		fmt.Printf("\nresults saved to %s\n", *out)
	}
	if p := firstNonEmpty(*journalPath, *resumePath); p != "" {
		fmt.Printf("\njournal written to %s\n", p)
	}
	return nil
}

// printModels renders the fault-model registry: one line of
// description per model plus its campaign set and whether the
// checkpoint-at-breakpoint fast path applies (and, when it does not,
// the model's typed reason).
func printModels(w io.Writer) {
	fmt.Fprintln(w, "registered fault models (-fault-model):")
	for _, m := range inject.Models() {
		fmt.Fprintf(w, "\n  %-8s %s\n", m.Name(), m.Describe())
		keys := ""
		for _, c := range m.Campaigns() {
			keys += analysis.CampaignKey(c)
		}
		fmt.Fprintf(w, "           campaigns: %s\n", keys)
		if cs := m.Checkpoint(); cs.Compatible {
			fmt.Fprintf(w, "           checkpoint-at-breakpoint: reused across same-PC targets\n")
		} else {
			fmt.Fprintf(w, "           checkpoint-at-breakpoint: disabled — %s\n", cs.Reason)
		}
	}
}

func firstNonEmpty(a, b string) string {
	if a != "" {
		return a
	}
	return b
}
