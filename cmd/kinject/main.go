// Command kinject runs the fault/error injection campaigns of the
// study and prints every table and figure of the evaluation.
//
// Usage:
//
//	kinject [-campaigns ABC] [-scale N] [-seed N]
//	        [-max-targets N] [-max-funcs N] [-out results.json.gz] [-q]
//
// A full run (no -max-targets) performs every injection of all three
// campaigns — several thousand experiments — and takes minutes; use
// -max-targets for a quick subsampled study.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/inject"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "kinject:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("kinject", flag.ContinueOnError)
	campaigns := fs.String("campaigns", "ABC", "campaigns to run (subset of ABC)")
	scale := fs.Int("scale", 1, "workload scale")
	seed := fs.Int64("seed", 2003, "random seed for bit selection")
	maxTargets := fs.Int("max-targets", 0, "cap injections per function (0 = all)")
	maxFuncs := fs.Int("max-funcs", 0, "cap functions per campaign (0 = all)")
	out := fs.String("out", "", "save results to this file (gzipped JSON)")
	quiet := fs.Bool("q", false, "suppress progress output")
	noAsserts := fs.Bool("no-assertions", false, "strip kernel BUG() assertions (ablation build)")
	workers := fs.Int("workers", 1, "parallel injection machines")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := core.DefaultConfig()
	cfg.Scale = *scale
	cfg.Seed = *seed
	cfg.MaxTargetsPerFunc = *maxTargets
	cfg.MaxFuncsPerCampaign = *maxFuncs
	cfg.DisableAssertions = *noAsserts
	cfg.Workers = *workers
	cfg.Campaigns = nil
	for _, ch := range strings.ToUpper(*campaigns) {
		switch ch {
		case 'A':
			cfg.Campaigns = append(cfg.Campaigns, inject.CampaignA)
		case 'B':
			cfg.Campaigns = append(cfg.Campaigns, inject.CampaignB)
		case 'C':
			cfg.Campaigns = append(cfg.Campaigns, inject.CampaignC)
		default:
			return fmt.Errorf("unknown campaign %q", string(ch))
		}
	}
	if !*quiet {
		last := time.Now()
		cfg.Progress = func(c inject.Campaign, fn string, done, total int) {
			if done == total || time.Since(last) > 2*time.Second {
				last = time.Now()
				fmt.Fprintf(os.Stderr, "\rcampaign %v: %d/%d (%s)        ",
					c, done, total, fn)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
	}

	start := time.Now()
	s, err := core.New(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("golden run: %d cycles; watchdog budget: %d cycles\n",
		s.Runner.GoldenCycles, s.Runner.Budget)
	for _, c := range cfg.Campaigns {
		fmt.Printf("campaign %v: %d target functions\n", c, len(s.FuncsFor[c]))
	}
	fmt.Println()

	if err := s.RunAll(); err != nil {
		return err
	}
	fmt.Printf("completed in %s\n\n", time.Since(start).Round(time.Millisecond))

	fmt.Println(s.ReportTable2())
	fmt.Println(s.ReportTable1())
	fmt.Println(s.ReportFigure1())
	fmt.Println(analysis.RenderAll(s.Set))

	if *out != "" {
		if err := s.Set.Save(*out); err != nil {
			return err
		}
		fmt.Printf("\nresults saved to %s\n", *out)
	}
	return nil
}
