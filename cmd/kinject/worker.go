package main

import (
	"os"
	"os/exec"

	"repro/internal/fleet"
)

// workerCommand builds the command that launches one injection worker
// subprocess; it is a variable so tests can point it at a helper
// binary or wrap it in a crash injector.
var workerCommand = func() *exec.Cmd {
	exe, err := os.Executable()
	if err != nil {
		exe = os.Args[0]
	}
	return exec.Command(exe, "-worker")
}

// runWorker serves injection runs over stdin/stdout until the
// supervisor closes the stream. The study configuration arrives in the
// hello frame, not flags, so the worker re-derives the identical
// deterministic target list the supervisor enumerated. The backend is
// shared with kampaignd -worker (internal/fleet), so a supervisor
// never cares which binary serves it.
func runWorker() error {
	return fleet.ServeWorker(os.Stdin, os.Stdout)
}
