package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"syscall"

	"repro/internal/fleet"
)

// workerCommand builds the command that launches one injection worker
// subprocess; it is a variable so tests can point it at a helper
// binary or wrap it in a crash injector.
var workerCommand = func() *exec.Cmd {
	exe, err := os.Executable()
	if err != nil {
		exe = os.Args[0]
	}
	return exec.Command(exe, "-worker")
}

// runWorker serves injection runs over stdin/stdout until the
// supervisor closes the stream. The study configuration arrives in the
// hello frame, not flags, so the worker re-derives the identical
// deterministic target list the supervisor enumerated. The backend is
// shared with kampaignd -worker (internal/fleet), so a supervisor
// never cares which binary serves it.
func runWorker() error {
	return fleet.ServeWorker(os.Stdin, os.Stdout)
}

// runRemoteWorker serves injection runs over TCP for a kampaignd
// worker hub (-connect addr), redialing with backoff across daemon
// restarts and partitions. Unlike the stdin/stdout worker — whose
// shutdown is owned by the supervising parent — a remote worker owns
// its own lifetime: SIGINT/SIGTERM cancel the connect loop and the
// process exits cleanly; the daemon just sees a dead peer and charges
// its supervision policies.
func runRemoteWorker(addr string) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err := fleet.ConnectWorker(ctx, addr, fleet.ConnectOptions{
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "kinject worker: "+format+"\n", args...)
		},
	})
	if errors.Is(err, context.Canceled) {
		return nil // interrupted: the operator asked us to leave
	}
	return err
}
