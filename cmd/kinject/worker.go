package main

import (
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/inject"
	"repro/internal/wire"
)

// workerCommand builds the command that launches one injection worker
// subprocess; it is a variable so tests can point it at a helper
// binary or wrap it in a crash injector.
var workerCommand = func() *exec.Cmd {
	exe, err := os.Executable()
	if err != nil {
		exe = os.Args[0]
	}
	return exec.Command(exe, "-worker")
}

// workerBeatEvery is the worker's heartbeat period. It must be well
// under the supervisor's heartbeat deadline: missing several beats in
// a row is what gets a worker killed.
const workerBeatEvery = time.Second

// runWorker serves injection runs over stdin/stdout until the
// supervisor closes the stream. The study configuration arrives in the
// hello frame, not flags, so the worker re-derives the identical
// deterministic target list the supervisor enumerated.
func runWorker() error {
	// The supervisor owns this process: shutdown is stdin EOF (clean)
	// or SIGKILL (deadline). A terminal Ctrl-C reaches the whole
	// process group, but the drain decision belongs to the parent, so
	// interrupts are ignored here.
	signal.Ignore(os.Interrupt, syscall.SIGTERM)
	return wire.Serve(os.Stdin, os.Stdout, &workerBackend{}, workerBeatEvery)
}

// workerBackend implements wire.Backend on a core.Study: Boot builds
// the study from the shipped spec, Run executes one target under the
// full in-process retry-and-quarantine policy.
type workerBackend struct {
	study *core.Study
}

func (b *workerBackend) Boot(spec wire.StudySpec) (wire.Ready, error) {
	cfg := core.DefaultConfig()
	cfg.Scale = spec.Scale
	cfg.Seed = spec.Seed
	cfg.MaxTargetsPerFunc = spec.MaxTargetsPerFunc
	cfg.MaxFuncsPerCampaign = spec.MaxFuncsPerCampaign
	cfg.DisableAssertions = spec.DisableAssertions
	cfg.FaultModel = spec.FaultModel // "" = bitflip (inject.ModelTag)
	cfg.RunTimeout = spec.RunTimeout
	cfg.NoCheckpoint = spec.NoCheckpoint
	cfg.MaxRetries = spec.MaxRetries
	cs, err := parseCampaigns(spec.Campaigns)
	if err != nil {
		return wire.Ready{}, err
	}
	cfg.Campaigns = cs
	s, err := core.New(cfg)
	if err != nil {
		return wire.Ready{}, err
	}
	b.study = s
	totals := make(map[string]int, len(cs))
	for _, c := range cs {
		ts, err := s.Targets(c)
		if err != nil {
			return wire.Ready{}, err
		}
		totals[analysis.CampaignKey(c)] = len(ts)
	}
	return wire.Ready{
		GoldenFP:   s.Runner.GoldenFingerprint(),
		GoldenDisk: fmt.Sprintf("%x", s.Runner.GoldenDiskHash()),
		Totals:     totals,
	}, nil
}

func (b *workerBackend) Run(campaign string, ordinal int) (*inject.Result, *inject.HarnessFault, error) {
	c, ok := analysis.CampaignFromKey(campaign)
	if !ok {
		return nil, nil, fmt.Errorf("unknown campaign key %q", campaign)
	}
	res, hf, err := b.study.RunOrdinal(c, ordinal)
	if err != nil {
		return nil, nil, err
	}
	if hf != nil {
		return nil, hf, nil
	}
	return &res, nil, nil
}
