// Command benchgate fails when a benchmark regresses against the
// checked-in baseline (BENCH_interp.json). CI runs the benchmarks,
// tees the output, and feeds it here:
//
//	go test -run '^$' -bench 'BenchmarkGoldenRun$|BenchmarkInjectionRun' -benchtime=1s . | tee bench.txt
//	go run ./cmd/benchgate -baseline BENCH_interp.json \
//	    -bench BenchmarkGoldenRun,BenchmarkInjectionRun,BenchmarkInjectionRunFullReplay -input bench.txt
//
// The gate compares each measured ns/op against the baseline entry's
// "after" value and fails if it exceeds it by more than -tolerance
// (default 0.25, i.e. a >25% regression).
//
// With -update the gate is skipped and the baseline file is rewritten
// instead: each named benchmark's "before" becomes its previous
// "after", "after" becomes the measured value, the speedup is
// recomputed, a trajectory entry is appended for entries that carry
// one, and the environment stanza (Go version, CPU count, date) is
// refreshed from the machine doing the measuring — so the baseline
// can never silently describe a machine it was not measured on.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

type benchEntry struct {
	Name       string    `json:"name"`
	Package    string    `json:"package,omitempty"`
	Unit       string    `json:"unit"`
	Note       string    `json:"note,omitempty"`
	Before     float64   `json:"before"`
	After      float64   `json:"after"`
	Speedup    string    `json:"speedup,omitempty"`
	Trajectory []float64 `json:"trajectory,omitempty"`
}

type environment struct {
	Go   string `json:"go"`
	CPUs int    `json:"cpus"`
	Date string `json:"date"`
}

type baseline struct {
	Description string        `json:"description"`
	Regenerate  string        `json:"regenerate"`
	Environment environment   `json:"environment"`
	Benchmarks  []*benchEntry `json:"benchmarks"`
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_interp.json", "baseline JSON with per-benchmark 'after' ns/op")
	bench := flag.String("bench", "", "comma-separated benchmark names to gate (exact, without the -N cpu suffix)")
	input := flag.String("input", "", "go test -bench output to parse (default stdin)")
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional regression over the baseline")
	update := flag.Bool("update", false, "rewrite the baseline from the measured values instead of gating")
	flag.Parse()
	names := strings.Split(*bench, ",")
	if *bench == "" || len(names) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: -bench is required")
		os.Exit(2)
	}

	base, err := loadBaseline(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}

	var r io.Reader = os.Stdin
	if *input != "" {
		f, err := os.Open(*input)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		defer f.Close()
		r = f
	}
	raw, err := io.ReadAll(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}

	if *update {
		if err := updateBaseline(base, names, raw); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		if err := writeBaseline(*baselinePath, base); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		fmt.Printf("benchgate: updated %s (%s, %d cpus, %s)\n",
			*baselinePath, base.Environment.Go, base.Environment.CPUs, base.Environment.Date)
		return
	}

	fail := false
	for _, name := range names {
		entry := findEntry(base, name)
		if entry == nil || entry.After <= 0 {
			fmt.Fprintf(os.Stderr, "benchgate: %s: no usable baseline entry for %s\n", *baselinePath, name)
			os.Exit(2)
		}
		measured, err := parseBench(strings.NewReader(string(raw)), name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		limit := entry.After * (1 + *tolerance)
		fmt.Printf("benchgate: %s measured %.0f ns/op, baseline %.0f ns/op, limit %.0f ns/op (+%d%%)\n",
			name, measured, entry.After, limit, int(*tolerance*100))
		if measured > limit {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL — %s regressed %.1f%% over the baseline (max %d%%)\n",
				name, (measured/entry.After-1)*100, int(*tolerance*100))
			fail = true
		}
	}
	if fail {
		os.Exit(1)
	}
	fmt.Println("benchgate: OK")
}

func loadBaseline(path string) (*baseline, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var base baseline
	if err := json.Unmarshal(b, &base); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	return &base, nil
}

func findEntry(base *baseline, name string) *benchEntry {
	for _, e := range base.Benchmarks {
		if e.Name == name {
			return e
		}
	}
	return nil
}

// updateBaseline folds the measured values for names into base and
// refreshes the environment stanza.
func updateBaseline(base *baseline, names []string, output []byte) error {
	for _, name := range names {
		entry := findEntry(base, name)
		if entry == nil {
			return fmt.Errorf("no baseline entry for %s", name)
		}
		measured, err := parseBench(strings.NewReader(string(output)), name)
		if err != nil {
			return err
		}
		measured = math.Round(measured*10) / 10
		entry.Before = entry.After
		entry.After = measured
		if entry.Before > 0 && measured > 0 {
			entry.Speedup = fmt.Sprintf("%.1fx", entry.Before/measured)
		}
		if len(entry.Trajectory) > 0 {
			entry.Trajectory = append(entry.Trajectory, math.Round(measured))
		}
	}
	base.Environment = environment{
		Go:   runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH,
		CPUs: runtime.NumCPU(),
		Date: time.Now().Format("2006-01-02"),
	}
	return nil
}

func writeBaseline(path string, base *baseline) error {
	var buf strings.Builder
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false) // keep the regenerate command's && readable
	enc.SetIndent("", "  ")
	if err := enc.Encode(base); err != nil {
		return err
	}
	return os.WriteFile(path, []byte(buf.String()), 0o644)
}

// parseBench extracts the ns/op of the named benchmark from go test
// -bench output. Benchmark result lines look like:
//
//	BenchmarkInjectionRun-8   3897   597750 ns/op
//
// The -8 is the GOMAXPROCS suffix; matching requires the name to be
// exact up to that suffix, so gating BenchmarkInjectionRun never
// accepts BenchmarkInjectionRunFullReplay. Multiple matching lines
// (e.g. -count>1) average.
func parseBench(r io.Reader, name string) (float64, error) {
	var sum float64
	var n int
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 {
			continue
		}
		bn := fields[0]
		if i := strings.LastIndex(bn, "-"); i > 0 {
			if _, err := strconv.Atoi(bn[i+1:]); err == nil {
				bn = bn[:i]
			}
		}
		if bn != name {
			continue
		}
		for i := 2; i+1 < len(fields); i++ {
			if fields[i+1] == "ns/op" {
				v, err := strconv.ParseFloat(fields[i], 64)
				if err != nil {
					return 0, fmt.Errorf("bad ns/op value %q: %w", fields[i], err)
				}
				sum += v
				n++
				break
			}
		}
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	if n == 0 {
		return 0, fmt.Errorf("no result line for %s in the bench output", name)
	}
	return sum / float64(n), nil
}
