// Command benchgate fails when a benchmark regresses against the
// checked-in baseline (BENCH_interp.json). CI runs the benchmark,
// tees the output, and feeds it here:
//
//	go test -run '^$' -bench 'BenchmarkInjectionRun$' -benchtime=1s . | tee bench.txt
//	go run ./cmd/benchgate -baseline BENCH_interp.json -bench BenchmarkInjectionRun -input bench.txt
//
// The gate compares the measured ns/op against the baseline entry's
// "after" value and fails if it exceeds it by more than -tolerance
// (default 0.25, i.e. a >25% regression).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

type baseline struct {
	Benchmarks []struct {
		Name  string  `json:"name"`
		Unit  string  `json:"unit"`
		After float64 `json:"after"`
	} `json:"benchmarks"`
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_interp.json", "baseline JSON with per-benchmark 'after' ns/op")
	bench := flag.String("bench", "", "benchmark name to gate (exact, without the -N cpu suffix)")
	input := flag.String("input", "", "go test -bench output to parse (default stdin)")
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional regression over the baseline")
	flag.Parse()
	if *bench == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -bench is required")
		os.Exit(2)
	}

	base, err := loadBaseline(*baselinePath, *bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}

	var r io.Reader = os.Stdin
	if *input != "" {
		f, err := os.Open(*input)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		defer f.Close()
		r = f
	}
	measured, err := parseBench(r, *bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}

	limit := base * (1 + *tolerance)
	fmt.Printf("benchgate: %s measured %.0f ns/op, baseline %.0f ns/op, limit %.0f ns/op (+%d%%)\n",
		*bench, measured, base, limit, int(*tolerance*100))
	if measured > limit {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL — %s regressed %.1f%% over the baseline (max %d%%)\n",
			*bench, (measured/base-1)*100, int(*tolerance*100))
		os.Exit(1)
	}
	fmt.Println("benchgate: OK")
}

func loadBaseline(path, name string) (float64, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var base baseline
	if err := json.Unmarshal(b, &base); err != nil {
		return 0, fmt.Errorf("parse %s: %w", path, err)
	}
	for _, e := range base.Benchmarks {
		if e.Name == name {
			if e.After <= 0 {
				return 0, fmt.Errorf("%s: baseline 'after' for %s is %v", path, name, e.After)
			}
			return e.After, nil
		}
	}
	return 0, fmt.Errorf("%s: no baseline entry for %s", path, name)
}

// parseBench extracts the ns/op of the named benchmark from go test
// -bench output. Benchmark result lines look like:
//
//	BenchmarkInjectionRun-8   3897   597750 ns/op
//
// The -8 is the GOMAXPROCS suffix; matching requires the name to be
// exact up to that suffix, so gating BenchmarkInjectionRun never
// accepts BenchmarkInjectionRunFullReplay. Multiple matching lines
// (e.g. -count>1) average.
func parseBench(r io.Reader, name string) (float64, error) {
	var sum float64
	var n int
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 {
			continue
		}
		bn := fields[0]
		if i := strings.LastIndex(bn, "-"); i > 0 {
			if _, err := strconv.Atoi(bn[i+1:]); err == nil {
				bn = bn[:i]
			}
		}
		if bn != name {
			continue
		}
		for i := 2; i+1 < len(fields); i++ {
			if fields[i+1] == "ns/op" {
				v, err := strconv.ParseFloat(fields[i], 64)
				if err != nil {
					return 0, fmt.Errorf("bad ns/op value %q: %w", fields[i], err)
				}
				sum += v
				n++
				break
			}
		}
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	if n == 0 {
		return 0, fmt.Errorf("no result line for %s in the bench output", name)
	}
	return sum / float64(n), nil
}
