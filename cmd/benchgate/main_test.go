package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkInjectionRun-8           	    3897	    597750 ns/op
BenchmarkInjectionRunFullReplay-8 	    1302	   1644361 ns/op
PASS
ok  	repro	4.876s
`

func TestParseBenchExactName(t *testing.T) {
	v, err := parseBench(strings.NewReader(sample), "BenchmarkInjectionRun")
	if err != nil {
		t.Fatal(err)
	}
	if v != 597750 {
		t.Fatalf("ns/op = %v, want 597750 (must not match the FullReplay line)", v)
	}
	v, err = parseBench(strings.NewReader(sample), "BenchmarkInjectionRunFullReplay")
	if err != nil {
		t.Fatal(err)
	}
	if v != 1644361 {
		t.Fatalf("ns/op = %v, want 1644361", v)
	}
}

func TestParseBenchAveragesRepeats(t *testing.T) {
	out := "BenchmarkX-4 10 100 ns/op\nBenchmarkX-4 10 300 ns/op\n"
	v, err := parseBench(strings.NewReader(out), "BenchmarkX")
	if err != nil {
		t.Fatal(err)
	}
	if v != 200 {
		t.Fatalf("ns/op = %v, want 200", v)
	}
}

func TestParseBenchMissing(t *testing.T) {
	if _, err := parseBench(strings.NewReader(sample), "BenchmarkNope"); err == nil {
		t.Fatal("want error for a benchmark absent from the output")
	}
}

func TestUpdateBaseline(t *testing.T) {
	base := &baseline{Benchmarks: []*benchEntry{
		{Name: "BenchmarkInjectionRun", Unit: "ns/op", Before: 2065829, After: 352511,
			Trajectory: []float64{12382548, 2065829, 352511}},
		{Name: "BenchmarkInjectionRunFullReplay", Unit: "ns/op", Before: 2065829, After: 1395250},
	}}
	err := updateBaseline(base, []string{"BenchmarkInjectionRun", "BenchmarkInjectionRunFullReplay"}, []byte(sample))
	if err != nil {
		t.Fatal(err)
	}
	e := base.Benchmarks[0]
	if e.Before != 352511 || e.After != 597750 {
		t.Fatalf("before/after = %v/%v, want 352511/597750", e.Before, e.After)
	}
	if len(e.Trajectory) != 4 || e.Trajectory[3] != 597750 {
		t.Fatalf("trajectory = %v, want a fourth point 597750", e.Trajectory)
	}
	if f := base.Benchmarks[1]; len(f.Trajectory) != 0 || f.After != 1644361 {
		t.Fatalf("FullReplay entry = %+v, want after 1644361 and no trajectory", f)
	}
	env := base.Environment
	if env.Go == "" || env.CPUs < 1 || env.Date == "" {
		t.Fatalf("environment stanza not refreshed: %+v", env)
	}
}

func TestUpdateBaselineUnknownName(t *testing.T) {
	base := &baseline{}
	if err := updateBaseline(base, []string{"BenchmarkNope"}, []byte(sample)); err == nil {
		t.Fatal("want error for a name missing from the baseline")
	}
}

func TestParseBenchNoSuffix(t *testing.T) {
	out := "BenchmarkSerial 5 42 ns/op\n"
	v, err := parseBench(strings.NewReader(out), "BenchmarkSerial")
	if err != nil {
		t.Fatal(err)
	}
	if v != 42 {
		t.Fatalf("ns/op = %v, want 42", v)
	}
}
