package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkInjectionRun-8           	    3897	    597750 ns/op
BenchmarkInjectionRunFullReplay-8 	    1302	   1644361 ns/op
PASS
ok  	repro	4.876s
`

func TestParseBenchExactName(t *testing.T) {
	v, err := parseBench(strings.NewReader(sample), "BenchmarkInjectionRun")
	if err != nil {
		t.Fatal(err)
	}
	if v != 597750 {
		t.Fatalf("ns/op = %v, want 597750 (must not match the FullReplay line)", v)
	}
	v, err = parseBench(strings.NewReader(sample), "BenchmarkInjectionRunFullReplay")
	if err != nil {
		t.Fatal(err)
	}
	if v != 1644361 {
		t.Fatalf("ns/op = %v, want 1644361", v)
	}
}

func TestParseBenchAveragesRepeats(t *testing.T) {
	out := "BenchmarkX-4 10 100 ns/op\nBenchmarkX-4 10 300 ns/op\n"
	v, err := parseBench(strings.NewReader(out), "BenchmarkX")
	if err != nil {
		t.Fatal(err)
	}
	if v != 200 {
		t.Fatalf("ns/op = %v, want 200", v)
	}
}

func TestParseBenchMissing(t *testing.T) {
	if _, err := parseBench(strings.NewReader(sample), "BenchmarkNope"); err == nil {
		t.Fatal("want error for a benchmark absent from the output")
	}
}

func TestParseBenchNoSuffix(t *testing.T) {
	out := "BenchmarkSerial 5 42 ns/op\n"
	v, err := parseBench(strings.NewReader(out), "BenchmarkSerial")
	if err != nil {
		t.Fatal(err)
	}
	if v != 42 {
		t.Fatalf("ns/op = %v, want 42", v)
	}
}
