package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/fleet"
)

// startRemoteWorker runs one real TCP worker (the kinject -connect
// loop with the real injection backend) in-process and returns its
// kill switch.
func startRemoteWorker(t *testing.T, addr string) context.CancelFunc {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		fleet.ConnectWorker(ctx, addr, fleet.ConnectOptions{})
	}()
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Error("remote worker never exited after cancel")
		}
	})
	return cancel
}

// waitProgress polls until the campaign has accounted at least n
// ordinals — the mid-shard marker the partition injectors key on.
func waitProgress(t *testing.T, baseURL, id string, n int64, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st := getStatus(t, baseURL, id)
		if st.State == stateFailed {
			t.Fatalf("campaign %s failed while waiting for progress: %s", id, st.Error)
		}
		if st.Progress.Done >= n || st.State == stateComplete {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s stuck at %d/%d ordinals", id, st.Progress.Done, st.Progress.Total)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// The remote tentpole acceptance: a campaign running entirely on two
// remote TCP worker pools survives losing one worker mid-shard AND a
// worker-listener stop/restart, heals with a freshly connected worker,
// and still publishes the byte-exact single-process ResultSet.
func TestKampaigndRemotePoolKillAndListenerRestartParity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real injection campaigns over TCP")
	}
	dir := t.TempDir()
	spec := testSpec("C")
	want := referenceSet(t, filepath.Join(dir, "ref.json.gz"), spec)

	hub, err := fleet.ListenHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()

	m := newManager(filepath.Join(dir, "data"), poolPlan{
		pools:          0, // no local pools: the campaign lives on TCP alone
		shardSize:      2,
		hub:            hub,
		remotePools:    2,
		remoteWorkers:  1,
		remoteJoinWait: 15 * time.Second,
		leaseTimeout:   2 * time.Second,
	})
	if err := os.MkdirAll(m.dataDir, 0o755); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newHandler(m))
	defer ts.Close()

	killA := startRemoteWorker(t, hub.Addr())
	startRemoteWorker(t, hub.Addr())

	id := submit(t, ts.URL, spec, 2)
	waitProgress(t, ts.URL, id, 1, 2*time.Minute)

	// The partition: one worker dies mid-shard and the daemon's worker
	// listener bounces (config reload, crash of the accept loop). The
	// surviving worker's established connection must ride it out.
	killA()
	hub.StopListener()
	time.Sleep(50 * time.Millisecond)
	if err := hub.RestartListener(); err != nil {
		t.Fatal(err)
	}
	// A replacement worker joins through the restarted listener; the
	// orphaned pool redials and claims it.
	startRemoteWorker(t, hub.Addr())

	st := waitComplete(t, ts.URL, id, 4*time.Minute)
	if st.Queue == nil || st.Queue.Done != st.Queue.Total {
		t.Fatalf("queue not drained: %+v", st.Queue)
	}
	if st.Metrics == nil || st.Metrics.RemoteAttaches < 2 {
		t.Fatalf("metrics missed the remote attaches: %+v", st.Metrics)
	}
	got := fetchResults(t, ts.URL, id)
	if !bytes.Equal(got, want) {
		t.Fatal("remote-pool result set differs from the single-process reference after worker kill + listener restart")
	}
}

// Graceful degradation: when every remote worker vanishes for good,
// the remote pool must die within its bounded join-wait budget and the
// local pool must finish the campaign — still byte-identical.
func TestKampaigndAllRemoteWorkersLostDegradesToLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real injection campaigns over TCP")
	}
	useHelperWorkers(t)
	dir := t.TempDir()
	spec := testSpec("C")
	want := referenceSet(t, filepath.Join(dir, "ref.json.gz"), spec)

	hub, err := fleet.ListenHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()

	m := newManager(filepath.Join(dir, "data"), poolPlan{
		pools:          1, // the local survivor
		workers:        1,
		shardSize:      2,
		maxRestarts:    2, // bounds how long the dead remote pool lingers
		hub:            hub,
		remotePools:    1,
		remoteWorkers:  1,
		remoteJoinWait: 300 * time.Millisecond,
		leaseTimeout:   2 * time.Second,
	})
	if err := os.MkdirAll(m.dataDir, 0o755); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newHandler(m))
	defer ts.Close()

	killRemote := startRemoteWorker(t, hub.Addr())

	id := submit(t, ts.URL, spec, 2)
	waitProgress(t, ts.URL, id, 1, 2*time.Minute)
	killRemote() // the entire remote workforce vanishes, permanently

	st := waitComplete(t, ts.URL, id, 4*time.Minute)
	got := fetchResults(t, ts.URL, id)
	if !bytes.Equal(got, want) {
		t.Fatal("degraded result set differs from the single-process reference")
	}
	// The remote pool must have died (budgeted join-wait exhaustion)
	// unless the tiny study completed before its budget ran out; either
	// way the local pool must be alive and the queue fully drained.
	var localAlive bool
	for _, p := range st.Pools {
		if p.Name == "pool0" && p.Alive {
			localAlive = true
		}
	}
	if !localAlive {
		t.Fatalf("local pool did not survive: %+v", st.Pools)
	}
	if st.Queue == nil || st.Queue.Done != st.Queue.Total {
		t.Fatalf("queue not drained after degradation: %+v", st.Queue)
	}
}
