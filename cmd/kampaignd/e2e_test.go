package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/wire"
)

// TestHelperKampaigndWorker is not a test: re-invoked as a subprocess,
// it serves real injections as a kampaignd worker over stdin/stdout.
func TestHelperKampaigndWorker(t *testing.T) {
	if os.Getenv("KAMPAIGND_WORKER_HELPER") == "" {
		return
	}
	if err := run([]string{"-worker"}, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "worker helper:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// TestHelperKampaigndMain is not a test: re-invoked as a subprocess,
// it runs a full kampaignd daemon (args from KAMPAIGND_ARGS) with
// worker subprocesses pointed back at this binary — the victim process
// for the SIGKILL crash-recovery test.
func TestHelperKampaigndMain(t *testing.T) {
	if os.Getenv("KAMPAIGND_MAIN_HELPER") == "" {
		return
	}
	workerCommand = helperWorkerCommand
	if err := run(strings.Fields(os.Getenv("KAMPAIGND_ARGS")), os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "main helper:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

func helperWorkerCommand() *exec.Cmd {
	cmd := exec.Command(os.Args[0], "-test.run=TestHelperKampaigndWorker$")
	cmd.Env = append(os.Environ(), "KAMPAIGND_WORKER_HELPER=1")
	return cmd
}

func useHelperWorkers(t *testing.T) {
	t.Helper()
	orig := workerCommand
	workerCommand = helperWorkerCommand
	t.Cleanup(func() { workerCommand = orig })
}

// testSpec is the standard small study every e2e test runs.
func testSpec(campaigns string) wire.StudySpec {
	return wire.StudySpec{
		Seed:                2003,
		Scale:               1,
		Campaigns:           campaigns,
		MaxFuncsPerCampaign: 3,
		MaxTargetsPerFunc:   2,
	}
}

// referenceSet runs the same study in-process, single-machine — the
// exact configuration kinject uses — and returns the saved ResultSet
// bytes the fleet's merged output must reproduce.
func referenceSet(t *testing.T, path string, spec wire.StudySpec) []byte {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Seed = spec.Seed
	cfg.Scale = spec.Scale
	cfg.MaxTargetsPerFunc = spec.MaxTargetsPerFunc
	cfg.MaxFuncsPerCampaign = spec.MaxFuncsPerCampaign
	cfg.DisableAssertions = spec.DisableAssertions
	cfg.FaultModel = spec.FaultModel
	cs, err := analysis.ParseCampaigns(spec.Campaigns)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Campaigns = cs
	s, err := core.New(cfg)
	if err != nil {
		t.Fatalf("reference study: %v", err)
	}
	if err := s.RunAll(); err != nil {
		t.Fatalf("reference study: %v", err)
	}
	if err := s.Set.Save(path); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

func submit(t *testing.T, baseURL string, spec wire.StudySpec, shardSize int) string {
	t.Helper()
	body, err := json.Marshal(submitRequest{StudySpec: spec, ShardSize: shardSize})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+"/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: %s: %s", resp.Status, msg)
	}
	var out struct{ ID string `json:"id"` }
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.ID == "" {
		t.Fatal("submit returned no campaign id")
	}
	return out.ID
}

func getStatus(t *testing.T, baseURL, id string) campaignStatus {
	t.Helper()
	resp, err := http.Get(baseURL + "/campaigns/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %s: %s: %s", id, resp.Status, msg)
	}
	var st campaignStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitComplete(t *testing.T, baseURL, id string, timeout time.Duration) campaignStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st := getStatus(t, baseURL, id)
		switch st.State {
		case stateComplete:
			return st
		case stateFailed:
			t.Fatalf("campaign %s failed: %s", id, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s still %s after %s (progress %d/%d)",
				id, st.State, timeout, st.Progress.Done, st.Progress.Total)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func fetchResults(t *testing.T, baseURL, id string) []byte {
	t.Helper()
	resp, err := http.Get(baseURL + "/campaigns/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("results %s: %s: %s", id, resp.Status, msg)
	}
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

func testPlan(chaosPoolKill int) poolPlan {
	return poolPlan{
		pools:         2,
		workers:       1,
		shardSize:     2,
		chaosPoolKill: chaosPoolKill,
	}
}

// The tentpole acceptance: a study submitted over HTTP, sharded across
// two worker pools, merges to the byte-exact ResultSet of a
// single-process in-process run.
func TestKampaigndTwoPoolParity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs injections in subprocesses")
	}
	useHelperWorkers(t)
	dir := t.TempDir()
	spec := testSpec("C")
	want := referenceSet(t, filepath.Join(dir, "ref.json.gz"), spec)

	m := newManager(filepath.Join(dir, "data"), testPlan(0))
	if err := os.MkdirAll(m.dataDir, 0o755); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newHandler(m))
	defer ts.Close()

	id := submit(t, ts.URL, spec, 2)
	st := waitComplete(t, ts.URL, id, 4*time.Minute)
	if st.Progress.Done != int64(st.Progress.Total) || st.Progress.Total == 0 {
		t.Fatalf("progress %d/%d after completion", st.Progress.Done, st.Progress.Total)
	}
	if st.Queue == nil || st.Queue.Done != st.Queue.Total {
		t.Fatalf("queue not drained: %+v", st.Queue)
	}
	got := fetchResults(t, ts.URL, id)
	if !bytes.Equal(got, want) {
		t.Fatal("two-pool merged result set differs from the single-process run")
	}
}

// A pool killed outright mid-campaign must not cost a byte: its leased
// shard goes back on the queue, the surviving pool finishes it, and
// the merged results still match the single-process reference.
func TestKampaigndPoolDeathMidCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("runs injections in subprocesses")
	}
	useHelperWorkers(t)
	dir := t.TempDir()
	spec := testSpec("C")
	want := referenceSet(t, filepath.Join(dir, "ref.json.gz"), spec)

	// Pool 0 dies after its first run — mid-shard, with its lease held.
	m := newManager(filepath.Join(dir, "data"), testPlan(1))
	if err := os.MkdirAll(m.dataDir, 0o755); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newHandler(m))
	defer ts.Close()

	id := submit(t, ts.URL, spec, 2)
	st := waitComplete(t, ts.URL, id, 4*time.Minute)

	var dead, alive int
	for _, p := range st.Pools {
		if p.Alive {
			alive++
		} else {
			dead++
		}
	}
	if dead != 1 || alive != 1 {
		t.Fatalf("pool status after chaos kill: %+v (want exactly one dead)", st.Pools)
	}
	if st.Metrics == nil || st.Metrics.PoolDeaths != 1 {
		t.Fatalf("metrics missed the pool death: %+v", st.Metrics)
	}
	got := fetchResults(t, ts.URL, id)
	if !bytes.Equal(got, want) {
		t.Fatal("merged result set differs from the reference after a mid-campaign pool death")
	}
}

// startDaemon execs the daemon helper against the given data dir and
// returns the process and its base URL (parsed from the listen line).
func startDaemon(t *testing.T, dataDir string) (*exec.Cmd, string, chan struct{}) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestHelperKampaigndMain$")
	cmd.Env = append(os.Environ(),
		"KAMPAIGND_MAIN_HELPER=1",
		"KAMPAIGND_ARGS=-listen 127.0.0.1:0 -data "+dataDir+" -pools 2 -pool-workers 1")
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	exited := make(chan struct{})
	go func() { cmd.Wait(); close(exited) }()

	urlc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "kampaignd listening on "); ok {
				select {
				case urlc <- strings.TrimSpace(rest):
				default:
				}
			}
		}
	}()
	select {
	case u := <-urlc:
		return cmd, u, exited
	case <-exited:
		t.Fatal("daemon exited before announcing its listen address")
	case <-time.After(2 * time.Minute):
		cmd.Process.Kill()
		t.Fatal("daemon never announced its listen address")
	}
	return nil, "", nil
}

// SIGKILLing the whole daemon mid-campaign — no drain, no Close,
// leases held, pools orphaned — must leave durable state a restarted
// daemon resumes to the exact uninterrupted result set: no ordinal
// duplicated, none lost.
func TestKampaigndSIGKILLResume(t *testing.T) {
	if testing.Short() {
		t.Skip("runs injections in subprocesses")
	}
	dir := t.TempDir()
	dataDir := filepath.Join(dir, "data")
	spec := testSpec("ABC")
	want := referenceSet(t, filepath.Join(dir, "ref.json.gz"), spec)

	victim, baseURL, exited := startDaemon(t, dataDir)
	id := submit(t, baseURL, spec, 2)
	jpath := filepath.Join(dataDir, id, journalFile)

	// Kill as soon as at least one result is durably journaled, so the
	// SIGKILL lands with work behind and ahead of it. If the tiny study
	// outruns the poll, the kill degrades to a post-completion no-op and
	// the assertions below still must hold.
	deadline := time.After(2 * time.Minute)
poll:
	for {
		select {
		case <-exited:
			break poll
		case <-deadline:
			victim.Process.Kill()
			t.Fatal("victim daemon made no journal progress within 2 minutes")
		case <-time.After(2 * time.Millisecond):
			if j, err := journal.Read(jpath); err == nil && j.CompletedCount() >= 1 {
				victim.Process.Signal(syscall.SIGKILL)
				break poll
			}
		}
	}
	<-exited

	// The torn journal must verify as recoverable, never corrupt.
	rep, err := journal.Verify(jpath)
	if err != nil {
		t.Fatalf("verify after SIGKILL: %v", err)
	}
	if rep.Corrupt != nil {
		t.Fatalf("SIGKILL produced mid-file corruption: %+v", rep.Corrupt)
	}

	// A restarted daemon on the same data dir resumes the campaign by
	// itself — no resubmission, same id.
	daemon2, baseURL2, exited2 := startDaemon(t, dataDir)
	defer func() {
		daemon2.Process.Signal(syscall.SIGTERM)
		select {
		case <-exited2:
		case <-time.After(30 * time.Second):
			daemon2.Process.Kill()
		}
	}()
	st := waitComplete(t, baseURL2, id, 4*time.Minute)
	if st.Progress.Done != int64(st.Progress.Total) {
		t.Fatalf("resumed progress %d/%d", st.Progress.Done, st.Progress.Total)
	}
	got := fetchResults(t, baseURL2, id)
	if !bytes.Equal(got, want) {
		t.Fatal("resumed merged result set differs from the uninterrupted reference")
	}

	// No duplicated or lost ordinals across the crash: every target
	// appears exactly once as a result or a quarantine.
	j, err := journal.Read(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if !j.Complete() {
		t.Fatal("resumed journal incomplete")
	}
	for key, total := range j.Totals {
		seen := make(map[int]int)
		for _, e := range j.Entries[key] {
			seen[e.Ordinal]++
		}
		for ord, n := range seen {
			if n > 1 {
				t.Fatalf("campaign %s ordinal %d journaled %d times", key, ord, n)
			}
		}
		for ord := 0; ord < total; ord++ {
			_, done := seen[ord]
			_, quarantined := j.Quarantine[key][ord]
			if !done && !quarantined {
				t.Fatalf("campaign %s ordinal %d lost across the crash", key, ord)
			}
			if done && quarantined {
				t.Fatalf("campaign %s ordinal %d both completed and quarantined", key, ord)
			}
		}
	}
}

func TestNormalizeSpecRejectsBadInput(t *testing.T) {
	if _, err := normalizeSpec(wire.StudySpec{Campaigns: "AXB"}); err == nil {
		t.Fatal("unknown campaign accepted")
	}
	if _, err := normalizeSpec(wire.StudySpec{FaultModel: "nope"}); err == nil {
		t.Fatal("unknown fault model accepted")
	}
	spec, err := normalizeSpec(wire.StudySpec{Campaigns: "cab"})
	if err != nil || spec.Campaigns != "CAB" {
		t.Fatalf("normalize: %q, %v", spec.Campaigns, err)
	}
	if spec.Seed == 0 || spec.Scale == 0 || spec.MaxRetries == 0 {
		t.Fatalf("defaults not applied: %+v", spec)
	}
}

func TestSubmitValidation(t *testing.T) {
	m := newManager(t.TempDir(), testPlan(0))
	ts := httptest.NewServer(newHandler(m))
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/campaigns", "application/json", strings.NewReader(`{"Campaigns":"Z"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad campaign got %s", resp.Status)
	}
	resp2, err := http.Get(ts.URL + "/campaigns/nope")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("missing campaign got %s", resp2.Status)
	}
}
