// Command kampaignd is the campaign-manager daemon: it accepts study
// specs over an HTTP/JSON API, shards their deterministic target lists
// onto a durable journal-backed work queue, dispatches the shards
// across supervised worker pools (kampaignd -worker subprocesses over
// the same wire protocol kinject -isolation=process uses), merges
// every pool's results into one crash-safe journal, and publishes the
// verified ResultSet — byte-identical to a single-process kinject run
// with the same flags.
//
// Usage:
//
//	kampaignd [-listen addr] [-data dir]
//	          [-pools N] [-pool-workers N] [-shard-size N]
//	          [-listen-workers addr] [-remote-pools N]
//	          [-remote-pool-workers N] [-remote-join-wait D]
//	          [-lease-timeout D]
//	          [-heartbeat-timeout D] [-boot-timeout D]
//	          [-breaker-threshold N] [-max-worker-restarts N]
//	          [-chaos-kill F] [-chaos-seed N] [-chaos-pool-kill N]
//
// With -listen-workers the daemon also accepts remote TCP workers
// (started with `kinject -connect addr` on any machine) and adds
// -remote-pools pools that dispatch onto them over the same wire
// protocol the local subprocess pools use — same handshake, golden
// cross-validation, heartbeat deadlines and restart budgets. Remote
// pools degrade gracefully: if every remote worker vanishes
// (partition, mass crash) the pool dies after its restart budget and
// the campaign completes on the surviving local pools, byte-identical.
// -lease-timeout additionally arms live lease reclaim, so a shard
// held by a wedged or partitioned pool is re-dispatched without a
// daemon restart; the merged journal's ordinal dedup keeps double
// executions out of the published ResultSet.
//
// API:
//
//	POST /campaigns                submit a study spec; returns {"id": ...}
//	GET  /campaigns                list campaigns with live status
//	GET  /campaigns/{id}           one campaign: state, progress, queue
//	                               stats, pool health, metrics snapshot
//	GET  /campaigns/{id}/results   the published results.json.gz
//	GET  /workers                  worker-hub stats (remote joins, queue)
//	GET  /healthz                  liveness
//
// Every campaign's state — spec, shard queue, merged journal — lives
// under -data and survives any crash: a SIGKILLed daemon restarted on
// the same -data dir resumes every interrupted campaign, re-dispatches
// shards whose done mark never hit disk, skips every ordinal already
// journaled, and converges on the same bytes an uninterrupted run
// produces. Pool failures mid-campaign are absorbed the same way:
// the dead pool's leased shards go back on the queue and surviving
// pools finish them.
//
// -chaos-kill / -chaos-pool-kill are the built-in fault injectors for
// the harness itself (worker SIGKILLs, a whole pool dying after N
// runs); the CI fleet job runs a two-pool campaign with one pool
// deliberately killed mid-run and proves the merged results identical
// to the in-process reference.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/supervisor"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "kampaignd:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("kampaignd", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:8343", "HTTP listen address (use :0 for an ephemeral port)")
	dataDir := fs.String("data", "kampaignd-data", "campaign state directory (queues, journals, results)")
	pools := fs.Int("pools", 2, "worker pools per campaign")
	poolWorkers := fs.Int("pool-workers", 1, "worker subprocesses per pool")
	shardSize := fs.Int("shard-size", 16, "targets per work-queue shard (per-campaign override via the API)")
	heartbeatTimeout := fs.Duration("heartbeat-timeout", supervisor.DefaultHeartbeatTimeout, "worker silence tolerated mid-run before a hard kill")
	bootTimeout := fs.Duration("boot-timeout", supervisor.DefaultBootTimeout, "worker golden-boot deadline")
	breakerThreshold := fs.Int("breaker-threshold", supervisor.DefaultBreakerThreshold, "consecutive worker deaths on one target before it is quarantined")
	maxRestarts := fs.Int("max-worker-restarts", supervisor.DefaultMaxRestarts, "abnormal worker deaths tolerated per pool before the pool fails")
	listenWorkers := fs.String("listen-workers", "", "TCP address for remote workers (kinject -connect); empty disables remote pools")
	remotePools := fs.Int("remote-pools", 1, "remote TCP worker pools per campaign (needs -listen-workers)")
	remotePoolWorkers := fs.Int("remote-pool-workers", 1, "claimed TCP workers per remote pool")
	remoteJoinWait := fs.Duration("remote-join-wait", fleet.DefaultJoinWait, "how long a remote pool waits for a worker to join before charging a restart")
	leaseTimeout := fs.Duration("lease-timeout", time.Minute, "reclaim a shard lease not renewed within this (wedged/partitioned pool); 0 disables live reclaim")
	chaosKill := fs.Float64("chaos-kill", 0, "chaos test: SIGKILL the worker of roughly this fraction of runs")
	chaosSeed := fs.Int64("chaos-seed", 0, "seed for the chaos/backoff-jitter RNGs (0 = nondeterministic)")
	chaosPoolKill := fs.Int("chaos-pool-kill", 0, "chaos test: kill pool 0 outright after this many runs (0 = never)")
	workerMode := fs.Bool("worker", false, "serve injections as a worker subprocess over stdin/stdout (internal; spawned by the daemon)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workerMode {
		return fleet.ServeWorker(os.Stdin, os.Stdout)
	}
	var hub *fleet.Hub
	if *listenWorkers == "" {
		*remotePools = 0
	} else {
		if *remotePools < 1 {
			return fmt.Errorf("-remote-pools %d: -listen-workers needs at least one remote pool", *remotePools)
		}
		var err error
		if hub, err = fleet.ListenHub(*listenWorkers); err != nil {
			return err
		}
		defer hub.Close()
	}
	if *pools+*remotePools < 1 {
		return fmt.Errorf("-pools %d: need at least one pool", *pools)
	}

	if err := os.MkdirAll(*dataDir, 0o755); err != nil {
		return err
	}
	m := newManager(*dataDir, poolPlan{
		pools:          *pools,
		workers:        *poolWorkers,
		shardSize:      *shardSize,
		heartbeat:      *heartbeatTimeout,
		boot:           *bootTimeout,
		breaker:        *breakerThreshold,
		maxRestarts:    *maxRestarts,
		hub:            hub,
		remotePools:    *remotePools,
		remoteWorkers:  *remotePoolWorkers,
		remoteJoinWait: *remoteJoinWait,
		leaseTimeout:   *leaseTimeout,
		chaosKill:      *chaosKill,
		chaosSeed:      *chaosSeed,
		chaosPoolKill:  *chaosPoolKill,
	})
	restarted, err := m.Resume()
	if err != nil {
		return fmt.Errorf("resume scan of %s: %w", *dataDir, err)
	}
	for _, id := range restarted {
		fmt.Fprintf(stdout, "resuming interrupted campaign %s\n", id)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "kampaignd listening on http://%s\n", ln.Addr())
	if hub != nil {
		fmt.Fprintf(stdout, "kampaignd workers on tcp://%s\n", hub.Addr())
	}

	srv := &http.Server{Handler: newHandler(m)}
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		<-sigc
		fmt.Fprintf(os.Stderr, "kampaignd: shutting down (campaign state is durable; restart to resume)\n")
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	if err := srv.Serve(ln); err != http.ErrServerClosed {
		return err
	}
	return nil
}
