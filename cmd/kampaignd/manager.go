package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/inject"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/queue"
	"repro/internal/wire"
)

// Campaign lifecycle states.
const (
	stateBooting  = "booting"  // golden reference study building
	stateRunning  = "running"  // fleet draining the shard queue
	stateComplete = "complete" // merged ResultSet published
	stateFailed   = "failed"
)

// On-disk layout of one campaign under the data dir:
//
//	<data>/<id>/spec.json       submitted study (normalized) + shard size
//	<data>/<id>/queue.kq        durable shard queue
//	<data>/<id>/journal.kjnl    merged result journal (all pools)
//	<data>/<id>/results.json.gz published ResultSet (present = complete)
const (
	specFile    = "spec.json"
	queueFile   = "queue.kq"
	journalFile = "journal.kjnl"
	resultsFile = "results.json.gz"
)

// workerCommand launches one worker subprocess; a package variable so
// tests can reroute it at the test binary's helper entrypoint.
var workerCommand = func() *exec.Cmd {
	exe, err := os.Executable()
	if err != nil {
		exe = os.Args[0]
	}
	return exec.Command(exe, "-worker")
}

// poolPlan is the daemon-level fleet layout every campaign runs on.
type poolPlan struct {
	pools     int
	workers   int // worker subprocesses per pool
	shardSize int

	heartbeat   time.Duration
	boot        time.Duration
	breaker     int
	maxRestarts int

	// Remote TCP pools (claimed from the worker hub) appended after
	// the local subprocess pools.
	hub            *fleet.Hub
	remotePools    int
	remoteWorkers  int
	remoteJoinWait time.Duration

	// leaseTimeout arms the queue's live lease reclaim: a pool that
	// stops renewing (wedged, partitioned) loses its shard to the
	// survivors without a daemon restart. 0 disables.
	leaseTimeout time.Duration

	chaosKill     float64
	chaosSeed     int64
	chaosPoolKill int // >0: pool 0 dies after this many runs
}

func (p poolPlan) poolConfigs() []fleet.PoolConfig {
	out := make([]fleet.PoolConfig, p.pools, p.pools+p.remotePools)
	for i := range out {
		out[i] = fleet.PoolConfig{
			Name:             fmt.Sprintf("pool%d", i),
			Workers:          p.workers,
			Command:          workerCommand,
			HeartbeatTimeout: p.heartbeat,
			BootTimeout:      p.boot,
			BreakerThreshold: p.breaker,
			MaxRestarts:      p.maxRestarts,
			ChaosKillRate:    p.chaosKill,
			// Offset per pool so pools draw independent chaos streams
			// while the whole fleet stays -chaos-seed reproducible.
			ChaosSeed: p.chaosSeed + int64(i),
		}
	}
	for i := 0; i < p.remotePools; i++ {
		out = append(out, fleet.PoolConfig{
			Name:             fmt.Sprintf("remote%d", i),
			Workers:          p.remoteWorkers,
			Hub:              p.hub,
			JoinWait:         p.remoteJoinWait,
			HeartbeatTimeout: p.heartbeat,
			BootTimeout:      p.boot,
			BreakerThreshold: p.breaker,
			MaxRestarts:      p.maxRestarts,
			ChaosSeed:        p.chaosSeed + int64(p.pools+i),
		})
	}
	if p.chaosPoolKill > 0 && len(out) > 0 {
		out[0].ChaosDieAfterRuns = p.chaosPoolKill
	}
	return out
}

// specRecord is the persisted form of a submission.
type specRecord struct {
	Spec      wire.StudySpec
	ShardSize int
}

// manager owns every campaign the daemon knows about.
type manager struct {
	dataDir string
	plan    poolPlan

	mu        sync.Mutex
	campaigns map[string]*campaign
	seq       int
}

func newManager(dataDir string, plan poolPlan) *manager {
	return &manager{dataDir: dataDir, plan: plan, campaigns: map[string]*campaign{}}
}

// normalizeSpec canonicalizes a submitted spec so that queue/journal
// validation across daemon restarts — and byte-identity against a
// kinject run with the same flags — see exactly one form.
func normalizeSpec(spec wire.StudySpec) (wire.StudySpec, error) {
	model, err := inject.ModelByName(spec.FaultModel)
	if err != nil {
		return spec, err
	}
	spec.FaultModel = inject.ModelTag(model.Name())
	if spec.Campaigns == "" {
		for _, c := range model.Campaigns() {
			spec.Campaigns += analysis.CampaignKey(c)
		}
	}
	cs, err := analysis.ParseCampaigns(spec.Campaigns)
	if err != nil {
		return spec, err
	}
	spec.Campaigns = ""
	for _, c := range cs {
		spec.Campaigns += analysis.CampaignKey(c)
	}
	if spec.Scale <= 0 {
		spec.Scale = 1
	}
	if spec.Seed == 0 {
		spec.Seed = 2003
	}
	if spec.MaxRetries == 0 {
		spec.MaxRetries = core.DefaultMaxRetries
	}
	return spec, nil
}

// Submit registers a new campaign and starts it asynchronously.
func (m *manager) Submit(spec wire.StudySpec, shardSize int) (*campaign, error) {
	spec, err := normalizeSpec(spec)
	if err != nil {
		return nil, err
	}
	if shardSize <= 0 {
		shardSize = m.plan.shardSize
	}

	m.mu.Lock()
	m.seq++
	id := fmt.Sprintf("c%04d", m.seq)
	m.mu.Unlock()

	dir := filepath.Join(m.dataDir, id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	// Persist the spec atomically: the resume scan only trusts dirs
	// whose spec.json is whole.
	buf, err := json.MarshalIndent(specRecord{Spec: spec, ShardSize: shardSize}, "", "  ")
	if err != nil {
		return nil, err
	}
	tmp := filepath.Join(dir, specFile+".tmp")
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return nil, err
	}
	if err := os.Rename(tmp, filepath.Join(dir, specFile)); err != nil {
		return nil, err
	}

	c := newCampaign(id, dir, spec, shardSize)
	m.mu.Lock()
	m.campaigns[id] = c
	m.mu.Unlock()
	go c.run(m.plan)
	return c, nil
}

// Resume scans the data dir for campaigns from a previous daemon life:
// completed ones are re-registered as-is, interrupted ones restart and
// pick up from their durable queue + journal. Returns the restarted ids.
func (m *manager) Resume() ([]string, error) {
	entries, err := os.ReadDir(m.dataDir)
	if err != nil {
		return nil, err
	}
	var restarted []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(m.dataDir, e.Name())
		buf, err := os.ReadFile(filepath.Join(dir, specFile))
		if err != nil {
			continue // not a campaign dir (or torn mid-submit: never ran)
		}
		var rec specRecord
		if err := json.Unmarshal(buf, &rec); err != nil {
			return nil, fmt.Errorf("%s: corrupt %s: %w", e.Name(), specFile, err)
		}
		c := newCampaign(e.Name(), dir, rec.Spec, rec.ShardSize)
		m.mu.Lock()
		m.campaigns[c.id] = c
		var n int
		if _, err := fmt.Sscanf(e.Name(), "c%04d", &n); err == nil && n > m.seq {
			m.seq = n
		}
		m.mu.Unlock()
		if _, err := os.Stat(filepath.Join(dir, resultsFile)); err == nil {
			c.setDone(nil) // published before the restart
			continue
		}
		go c.run(m.plan)
		restarted = append(restarted, c.id)
	}
	sort.Strings(restarted)
	return restarted, nil
}

func (m *manager) Get(id string) (*campaign, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.campaigns[id]
	return c, ok
}

func (m *manager) List() []*campaign {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*campaign, 0, len(m.campaigns))
	for _, c := range m.campaigns {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// campaign is one submitted study being executed on the fleet.
type campaign struct {
	id        string
	dir       string
	spec      wire.StudySpec
	shardSize int

	metrics *obs.Metrics
	done    atomic.Int64 // ordinals accounted (results + quarantines)

	mu     sync.Mutex
	state  string
	errMsg string
	totals map[string]int
	total  int
	q      *queue.Queue
	fl     *fleet.Fleet
}

func newCampaign(id, dir string, spec wire.StudySpec, shardSize int) *campaign {
	return &campaign{
		id: id, dir: dir, spec: spec, shardSize: shardSize,
		metrics: obs.New(0),
		state:   stateBooting,
	}
}

func (c *campaign) resultsPath() string { return filepath.Join(c.dir, resultsFile) }

func (c *campaign) setDone(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		c.state = stateFailed
		c.errMsg = err.Error()
		return
	}
	c.state = stateComplete
	c.errMsg = ""
}

// run drives the campaign to completion (or failure); it is the only
// writer of the campaign's on-disk state.
func (c *campaign) run(plan poolPlan) {
	c.setDone(c.execute(plan))
}

func (c *campaign) execute(plan poolPlan) error {
	// Golden boot: the daemon runs the reference study in-process to
	// obtain the cross-validation oracle and the deterministic target
	// totals every shard boundary derives from.
	var b fleet.Backend
	rdy, err := b.Boot(c.spec)
	if err != nil {
		return fmt.Errorf("golden boot: %w", err)
	}
	total := 0
	for _, n := range rdy.Totals {
		total += n
	}
	c.mu.Lock()
	c.totals = rdy.Totals
	c.total = total
	c.mu.Unlock()

	shards := queue.Shards(rdy.Totals, c.shardSize)
	q, err := c.openQueue(shards)
	if err != nil {
		return err
	}
	defer q.Close()
	q.Metrics = c.metrics
	q.SetLeaseTimeout(plan.leaseTimeout)

	jw, doneMap, err := c.openJournal()
	if err != nil {
		return err
	}
	jw.Metrics = c.metrics
	defer jw.Close(nil) // idempotent; the happy path closes with the trailer below

	cs, err := analysis.ParseCampaigns(c.spec.Campaigns)
	if err != nil {
		return err
	}
	for _, cc := range cs {
		if err := jw.BeginCampaign(cc, rdy.Totals[analysis.CampaignKey(cc)]); err != nil {
			return err
		}
	}

	fl, err := fleet.New(fleet.Config{
		Spec:       c.spec,
		GoldenFP:   rdy.GoldenFP,
		GoldenDisk: rdy.GoldenDisk,
		Totals:     rdy.Totals,
		Pools:      plan.poolConfigs(),
		Metrics:    c.metrics,
	})
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.q, c.fl = q, fl
	c.state = stateRunning
	c.mu.Unlock()

	runErr := fl.Run(q, fleet.RunOptions{
		Sink:          jw,
		Done:          doneMap,
		OnOrdinalDone: func(string, int, bool) { c.done.Add(1) },
	})
	snap := c.metrics.Snapshot()
	if cerr := jw.Close(&snap); runErr == nil && cerr != nil {
		runErr = cerr
	}
	if runErr != nil {
		return runErr
	}

	// Publish: re-read the merged journal from disk, prove it whole,
	// and save the reconstructed ResultSet — the same reconstruction a
	// resumed kinject run performs, so the bytes match a single-process
	// study with identical flags.
	j, err := journal.Read(filepath.Join(c.dir, journalFile))
	if err != nil {
		return fmt.Errorf("reread merged journal: %w", err)
	}
	if !j.Complete() {
		return errors.New("merged journal incomplete after queue drain")
	}
	tmp := c.resultsPath() + ".tmp"
	if err := j.ResultSet().Save(tmp); err != nil {
		return err
	}
	return os.Rename(tmp, c.resultsPath())
}

// openQueue opens or creates the campaign's durable shard queue.
func (c *campaign) openQueue(shards []queue.Shard) (*queue.Queue, error) {
	path := filepath.Join(c.dir, queueFile)
	if _, err := os.Stat(path); err != nil {
		return queue.Create(path, c.spec, shards)
	}
	q, err := queue.Open(path, c.spec, shards)
	var ce *queue.CorruptError
	if errors.As(err, &ce) {
		// A queue torn mid-Create is unreadable but also unacted-on:
		// with no journal on disk, no result depends on it — recreate.
		// With a journal present, refuse: corruption after real work
		// needs a human.
		if _, jerr := os.Stat(filepath.Join(c.dir, journalFile)); os.IsNotExist(jerr) {
			if rerr := os.Remove(path); rerr != nil {
				return nil, rerr
			}
			return queue.Create(path, c.spec, shards)
		}
	}
	return q, err
}

// openJournal opens or creates the merged journal and derives the
// already-accounted ordinal map a resumed fleet must skip.
func (c *campaign) openJournal() (*journal.Writer, map[string]map[int]bool, error) {
	path := filepath.Join(c.dir, journalFile)
	if _, err := os.Stat(path); err != nil {
		jw, err := journal.Create(path, journal.Header{
			Version:             journal.Version,
			Seed:                c.spec.Seed,
			Scale:               c.spec.Scale,
			Campaigns:           c.spec.Campaigns,
			MaxTargetsPerFunc:   c.spec.MaxTargetsPerFunc,
			MaxFuncsPerCampaign: c.spec.MaxFuncsPerCampaign,
			DisableAssertions:   c.spec.DisableAssertions,
			FaultModel:          c.spec.FaultModel,
		})
		return jw, nil, err
	}
	jw, prior, err := journal.OpenAppend(path)
	if err != nil {
		return nil, nil, err
	}
	doneMap := map[string]map[int]bool{}
	add := func(key string, ord int) {
		if doneMap[key] == nil {
			doneMap[key] = map[int]bool{}
		}
		doneMap[key][ord] = true
	}
	for key, m := range prior.Completed() {
		for ord := range m {
			add(key, ord)
		}
	}
	for key, m := range prior.QuarantinedOrdinals() {
		for ord := range m {
			add(key, ord)
		}
	}
	n := 0
	for _, m := range doneMap {
		n += len(m)
	}
	c.done.Store(int64(n))
	return jw, doneMap, nil
}

// campaignStatus is the GET /campaigns/{id} body.
type campaignStatus struct {
	ID       string
	State    string
	Error    string `json:",omitempty"`
	Spec     wire.StudySpec
	Totals   map[string]int `json:",omitempty"`
	Progress struct {
		Done  int64
		Total int
	}
	Queue   *queue.Stats       `json:",omitempty"`
	Pools   []fleet.PoolStatus `json:",omitempty"`
	Metrics *obs.Snapshot      `json:",omitempty"`
	Results string             `json:",omitempty"` // results file, when complete
}

func (c *campaign) status() campaignStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := campaignStatus{
		ID:     c.id,
		State:  c.state,
		Error:  c.errMsg,
		Spec:   c.spec,
		Totals: c.totals,
	}
	st.Progress.Done = c.done.Load()
	st.Progress.Total = c.total
	if c.q != nil {
		qs := c.q.Stats()
		st.Queue = &qs
	}
	if c.fl != nil {
		st.Pools = c.fl.Status()
	}
	snap := c.metrics.Snapshot()
	st.Metrics = &snap
	if c.state == stateComplete {
		st.Results = c.resultsPath()
	}
	return st
}
