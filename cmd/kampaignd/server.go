package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/wire"
)

// submitRequest is the POST /campaigns body: the study spec plus an
// optional per-campaign shard-size override.
type submitRequest struct {
	wire.StudySpec
	ShardSize int `json:",omitempty"`
}

func newHandler(m *manager) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /workers", func(w http.ResponseWriter, r *http.Request) {
		if m.plan.hub == nil {
			httpError(w, http.StatusNotFound, errors.New("no worker hub (-listen-workers not set)"))
			return
		}
		writeJSON(w, m.plan.hub.Stats())
	})
	mux.HandleFunc("POST /campaigns", func(w http.ResponseWriter, r *http.Request) {
		var req submitRequest
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("decode spec: %w", err))
			return
		}
		c, err := m.Submit(req.StudySpec, req.ShardSize)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		writeJSON(w, map[string]string{"id": c.id})
	})
	mux.HandleFunc("GET /campaigns", func(w http.ResponseWriter, r *http.Request) {
		all := m.List()
		out := make([]campaignStatus, 0, len(all))
		for _, c := range all {
			out = append(out, c.status())
		}
		writeJSON(w, out)
	})
	mux.HandleFunc("GET /campaigns/{id}", func(w http.ResponseWriter, r *http.Request) {
		c, ok := m.Get(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("no campaign %q", r.PathValue("id")))
			return
		}
		writeJSON(w, c.status())
	})
	mux.HandleFunc("GET /campaigns/{id}/results", func(w http.ResponseWriter, r *http.Request) {
		c, ok := m.Get(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("no campaign %q", r.PathValue("id")))
			return
		}
		st := c.status()
		if st.State != stateComplete {
			httpError(w, http.StatusConflict,
				fmt.Errorf("campaign %s is %s; results exist only when complete", c.id, st.State))
			return
		}
		w.Header().Set("Content-Type", "application/gzip")
		http.ServeFile(w, r, c.resultsPath())
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
