package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/asm"
	"repro/internal/inject"
	"repro/internal/journal"
)

func TestRunReport(t *testing.T) {
	rs := &analysis.ResultSet{
		Seed:  1,
		Scale: 1,
		Results: map[string][]inject.Result{
			"A": {{
				Campaign:  inject.CampaignA,
				Target:    inject.Target{Func: asm.Func{Name: "sys_read", Section: "fs", Addr: 0x1000, Size: 32}},
				Outcome:   inject.OutcomeNotManifested,
				Activated: true,
			}},
		},
	}
	path := t.TempDir() + "/r.json.gz"
	if err := rs.Save(path); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Figure 4 — campaign A") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil, &bytes.Buffer{}); err == nil {
		t.Fatal("no-arg run accepted")
	}
	if err := run([]string{"/does/not/exist"}, &bytes.Buffer{}); err == nil {
		t.Fatal("missing file accepted")
	}
}

// kreport accepts a result journal wherever a results file is
// accepted, including a partial journal from an interrupted study.
func TestRunReportFromJournal(t *testing.T) {
	path := t.TempDir() + "/journal"
	w, err := journal.Create(path, journal.Header{Seed: 1, Scale: 1, Campaigns: "A"})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.BeginCampaign(inject.CampaignA, 2); err != nil {
		t.Fatal(err)
	}
	res := inject.Result{
		Campaign:  inject.CampaignA,
		Target:    inject.Target{Func: asm.Func{Name: "sys_read", Section: "fs", Addr: 0x1000, Size: 32}},
		Outcome:   inject.OutcomeNotManifested,
		Activated: true,
	}
	if err := w.Put(inject.CampaignA, 0, 0, 2, res); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(nil); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := run([]string{path}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "1 injections journaled (partial)") {
		t.Fatalf("missing partial-journal note:\n%s", got)
	}
	if !strings.Contains(got, "Figure 4 — campaign A") {
		t.Fatalf("missing report:\n%s", got)
	}
}

// Several result sets render the side-by-side fault-model comparison
// before the individual reports.
func TestRunModelComparison(t *testing.T) {
	dir := t.TempDir()
	mk := func(name, model string) string {
		rs := &analysis.ResultSet{
			Seed:       1,
			Scale:      1,
			FaultModel: model,
			Results: map[string][]inject.Result{
				"A": {{
					Campaign:  inject.CampaignA,
					Target:    inject.Target{Model: model, Func: asm.Func{Name: "sys_read", Section: "fs", Addr: 0x1000, Size: 32}},
					Outcome:   inject.OutcomeCrash,
					Activated: true,
				}},
			},
		}
		path := dir + "/" + name
		if err := rs.Save(path); err != nil {
			t.Fatal(err)
		}
		return path
	}
	p1 := mk("bitflip.json.gz", "")
	p2 := mk("syscall.json.gz", "syscall")

	var out bytes.Buffer
	if err := run([]string{p1, p2}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	cmp := strings.Index(got, "Fault-model comparison")
	if cmp < 0 {
		t.Fatalf("missing comparison table:\n%s", got)
	}
	first := strings.Index(got, "Injection study")
	if first >= 0 && first < cmp {
		t.Fatal("comparison table must precede the per-set reports")
	}
	for _, want := range []string{"bitflip", "fault model: syscall", "Figure 4 — campaign A"} {
		if !strings.Contains(got, want) {
			t.Fatalf("missing %q:\n%s", want, got)
		}
	}

	// A single set renders exactly as before — no comparison header.
	out.Reset()
	if err := run([]string{p1}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "Fault-model comparison") {
		t.Fatal("single-set report grew a comparison table")
	}
}
