package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/asm"
	"repro/internal/inject"
)

func TestRunReport(t *testing.T) {
	rs := &analysis.ResultSet{
		Seed:  1,
		Scale: 1,
		Results: map[string][]inject.Result{
			"A": {{
				Campaign:  inject.CampaignA,
				Target:    inject.Target{Func: asm.Func{Name: "sys_read", Section: "fs", Addr: 0x1000, Size: 32}},
				Outcome:   inject.OutcomeNotManifested,
				Activated: true,
			}},
		},
	}
	path := t.TempDir() + "/r.json.gz"
	if err := rs.Save(path); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Figure 4 — campaign A") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil, &bytes.Buffer{}); err == nil {
		t.Fatal("no-arg run accepted")
	}
	if err := run([]string{"/does/not/exist"}, &bytes.Buffer{}); err == nil {
		t.Fatal("missing file accepted")
	}
}
