// Command kreport re-analyzes a saved injection result set (produced
// by kinject -out) or a result journal (produced by kinject -journal)
// and prints the evaluation tables and figures. A partial journal —
// from an interrupted or still-running study — renders the report over
// the injections completed so far.
//
// Usage:
//
//	kreport <results.json.gz | journal>
package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/analysis"
	"repro/internal/journal"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "kreport:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: kreport <results.json.gz | journal>")
	}
	path := args[0]
	var rs *analysis.ResultSet
	if journal.Sniff(path) {
		j, err := journal.Read(path)
		if err != nil {
			return err
		}
		rs = j.ResultSet()
		state := "complete"
		if !j.Complete() {
			state = "partial"
		}
		fmt.Fprintf(w, "journal %s: %d injections journaled (%s)", path, j.CompletedCount(), state)
		if n := j.QuarantinedCount(); n > 0 {
			fmt.Fprintf(w, ", %d quarantined", n)
		}
		fmt.Fprint(w, "\n\n")
	} else {
		var err error
		rs, err = analysis.Load(path)
		if err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, analysis.RenderAll(rs))
	return err
}
