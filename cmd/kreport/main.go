// Command kreport re-analyzes a saved injection result set (produced
// by kinject -out) or a result journal (produced by kinject -journal)
// and prints the evaluation tables and figures. A partial journal —
// from an interrupted or still-running study — renders the report over
// the injections completed so far.
//
// Usage:
//
//	kreport [-verify] <results.json.gz | journal> [more sets...]
//
// Given several result sets (or journals), kreport renders a
// side-by-side fault-model comparison — one column per set's fault
// model, with the outcome and severity distributions — followed by
// each set's full report. This is how studies run with different
// kinject -fault-model values are compared.
//
// -verify fscks each journal instead of reporting: every frame's
// length and CRC32C trailer is checked, and the first corrupt frame
// (if any) is reported with its index and file offset. A torn tail —
// the signature of a crash mid-write — is reported as recoverable;
// exit status is non-zero only for corruption or an unreadable file.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/analysis"
	"repro/internal/journal"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "kreport:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("kreport", flag.ContinueOnError)
	verify := fs.Bool("verify", false, "fsck a journal: check every frame, report the first corruption")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 1 {
		return fmt.Errorf("usage: kreport [-verify] <results.json.gz | journal> [more sets...]")
	}
	if *verify {
		// Verify every journal given, not just up to the first bad one:
		// a batch fsck that stops early would hide corruption in the
		// journals behind the first failure. All failures aggregate into
		// the exit status.
		var errs []error
		for _, path := range fs.Args() {
			if err := runVerify(path, w); err != nil {
				errs = append(errs, err)
			}
		}
		return errors.Join(errs...)
	}
	sets := make([]*analysis.ResultSet, 0, fs.NArg())
	for _, path := range fs.Args() {
		rs, err := loadSet(path, w)
		if err != nil {
			return err
		}
		sets = append(sets, rs)
	}
	if len(sets) > 1 {
		// Several studies side by side: the fault-model comparison
		// table first, then each study's full report.
		fmt.Fprintln(w, analysis.RenderModelComparison(sets))
	}
	for _, rs := range sets {
		if _, err := fmt.Fprintln(w, analysis.RenderAll(rs)); err != nil {
			return err
		}
	}
	return nil
}

// loadSet reads one result set from a saved results file or a journal,
// announcing journal state (partial studies render over what is
// journaled so far).
func loadSet(path string, w io.Writer) (*analysis.ResultSet, error) {
	if journal.Sniff(path) {
		j, err := journal.Read(path)
		if err != nil {
			return nil, err
		}
		rs := j.ResultSet()
		state := "complete"
		if !j.Complete() {
			state = "partial"
		}
		fmt.Fprintf(w, "journal %s: %d injections journaled (%s)", path, j.CompletedCount(), state)
		if n := j.QuarantinedCount(); n > 0 {
			fmt.Fprintf(w, ", %d quarantined", n)
		}
		fmt.Fprint(w, "\n\n")
		return rs, nil
	}
	return analysis.Load(path)
}

// runVerify fscks one journal and renders the report. Corruption makes
// the command fail so scripts (and the CI chaos job) can gate on it.
func runVerify(path string, w io.Writer) error {
	if !journal.Sniff(path) {
		return fmt.Errorf("%s is not a journal file", path)
	}
	rep, err := journal.Verify(path)
	if err != nil {
		return err
	}
	format := "kjnl2 (CRC32C frames)"
	if rep.Legacy {
		format = "kjnl1 (legacy, no checksums)"
	}
	fmt.Fprintf(w, "journal %s\n", rep.Path)
	fmt.Fprintf(w, "  format:      %s\n", format)
	fmt.Fprintf(w, "  frames:      %d intact\n", rep.Frames)
	fmt.Fprintf(w, "  results:     %d injections", rep.Results)
	if rep.Quarantined > 0 {
		fmt.Fprintf(w, ", %d quarantined", rep.Quarantined)
	}
	fmt.Fprintln(w)
	keys := make([]string, 0, len(rep.Campaigns))
	for key := range rep.Campaigns {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		fmt.Fprintf(w, "  campaign %s:  %d targets announced\n", key, rep.Campaigns[key])
	}
	switch {
	case rep.Corrupt != nil:
		fmt.Fprintf(w, "  CORRUPT:     frame %d at offset %d: %s\n",
			rep.Corrupt.Frame, rep.Corrupt.Offset, rep.Corrupt.Reason)
		fmt.Fprintf(w, "  %d intact frames precede the corruption; do not resume from this journal\n", rep.Frames)
		return fmt.Errorf("%s: journal is corrupt (frame %d at offset %d)", path, rep.Corrupt.Frame, rep.Corrupt.Offset)
	case rep.Truncated:
		fmt.Fprintf(w, "  torn tail:   file ends mid-frame (crash signature); recoverable — kinject -resume truncates it\n")
	case rep.Trailer:
		fmt.Fprintf(w, "  trailer:     present (clean close)\n")
	}
	if rep.Complete {
		fmt.Fprintf(w, "  status:      complete — every announced target accounted for\n")
	} else {
		fmt.Fprintf(w, "  status:      partial — resumable with kinject -resume\n")
	}
	return nil
}
