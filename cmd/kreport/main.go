// Command kreport re-analyzes a saved injection result set (produced
// by kinject -out) and prints the evaluation tables and figures.
//
// Usage:
//
//	kreport results.json.gz
package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/analysis"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "kreport:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: kreport <results.json.gz>")
	}
	rs, err := analysis.Load(args[0])
	if err != nil {
		return err
	}
	_, err = fmt.Fprintln(w, analysis.RenderAll(rs))
	return err
}
