package repro

// One benchmark per table and figure of the paper's evaluation. Each
// benchmark regenerates its experiment's data (a subsampled study,
// shared across benchmarks and built on first use) and reports the
// figures the paper reports as benchmark metrics, so
//
//	go test -bench=. -benchmem
//
// prints the reproduced results next to the timing. Absolute numbers
// differ from the paper (its substrate was a physical P4 running Linux
// 2.4.19; ours is a simulator), but the shape — who dominates, by
// roughly what factor, where the orderings fall — is the reproduction
// target. EXPERIMENTS.md records the comparison.

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/dump"
	"repro/internal/inject"
	"repro/internal/kernel"
	"repro/internal/kernprof"
	"repro/internal/unixbench"
)

var (
	studyOnce sync.Once
	studyVal  *core.Study
	studyErr  error
)

// study builds the shared subsampled study (about 1,900 injections
// across the three campaigns).
func study(b *testing.B) *core.Study {
	b.Helper()
	studyOnce.Do(func() {
		cfg := core.DefaultConfig()
		cfg.MaxTargetsPerFunc = 8
		studyVal, studyErr = core.New(cfg)
		if studyErr == nil {
			studyErr = studyVal.RunAll()
		}
	})
	if studyErr != nil {
		b.Fatalf("study: %v", studyErr)
	}
	return studyVal
}

func campaignResults(b *testing.B, c inject.Campaign) []inject.Result {
	s := study(b)
	rs := s.Results(c)
	if len(rs) == 0 {
		b.Fatalf("campaign %v has no results", c)
	}
	return rs
}

// BenchmarkFigure1SubsystemSizes regenerates the kernel subsystem
// size breakdown (Figure 1).
func BenchmarkFigure1SubsystemSizes(b *testing.B) {
	var total int
	for i := 0; i < b.N; i++ {
		prog, err := kernel.Assemble()
		if err != nil {
			b.Fatal(err)
		}
		total = 0
		for _, sub := range analysis.Subsystems {
			total += len(prog.Sections[sub].Code)
		}
	}
	b.ReportMetric(float64(total), "text_bytes")
}

// BenchmarkTable1Profile regenerates the kernel profile and the
// Table 1 function distribution.
func BenchmarkTable1Profile(b *testing.B) {
	var coreN, profiled int
	for i := 0; i < b.N; i++ {
		p, err := kernprof.Collect(unixbench.Suite(1), 1<<40, 0)
		if err != nil {
			b.Fatal(err)
		}
		coreN = len(p.TopCovering(0.95))
		profiled = len(p.Funcs)
	}
	b.ReportMetric(float64(profiled), "profiled_funcs")
	b.ReportMetric(float64(coreN), "core95_funcs")
}

func reportOutcomes(b *testing.B, results []inject.Result) {
	rows := analysis.OutcomeTable(results)
	total := rows[len(rows)-1]
	b.ReportMetric(float64(total.Injected), "injected")
	b.ReportMetric(100*float64(total.Activated)/float64(total.Injected), "activated_pct")
	if total.Activated > 0 {
		b.ReportMetric(100*float64(total.NotManifested)/float64(total.Activated), "not_manifested_pct")
		b.ReportMetric(100*float64(total.FailSilence)/float64(total.Activated), "fail_silence_pct")
		b.ReportMetric(100*float64(total.CrashHang())/float64(total.Activated), "crash_hang_pct")
	}
}

// BenchmarkFigure4CampaignA regenerates the campaign-A outcome table.
func BenchmarkFigure4CampaignA(b *testing.B) {
	rs := campaignResults(b, inject.CampaignA)
	for i := 0; i < b.N; i++ {
		_ = analysis.OutcomeTable(rs)
	}
	reportOutcomes(b, rs)
}

// BenchmarkFigure4CampaignB regenerates the campaign-B outcome table.
func BenchmarkFigure4CampaignB(b *testing.B) {
	rs := campaignResults(b, inject.CampaignB)
	for i := 0; i < b.N; i++ {
		_ = analysis.OutcomeTable(rs)
	}
	reportOutcomes(b, rs)
}

// BenchmarkFigure4CampaignC regenerates the campaign-C outcome table.
func BenchmarkFigure4CampaignC(b *testing.B) {
	rs := campaignResults(b, inject.CampaignC)
	for i := 0; i < b.N; i++ {
		_ = analysis.OutcomeTable(rs)
	}
	reportOutcomes(b, rs)
}

// BenchmarkFigure5CaseStudy regenerates the do_generic_file_read
// case study: a single-bit error in the end_index computation.
func BenchmarkFigure5CaseStudy(b *testing.B) {
	runner, err := inject.NewRunner(unixbench.Suite(1))
	if err != nil {
		b.Fatal(err)
	}
	fn, ok := runner.M.Prog.FuncByName("do_generic_file_read")
	if !ok {
		b.Fatal("no do_generic_file_read")
	}
	rng := rand.New(rand.NewSource(9))
	targets, err := inject.EnumerateTargets(runner.M.Prog, fn, inject.CampaignA, rng)
	if err != nil {
		b.Fatal(err)
	}
	var manifested int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		manifested = 0
		for k := 0; k < 24 && k < len(targets); k++ {
			res, _ := runner.RunTarget(inject.CampaignA, targets[k])
			if res.Activated && res.Outcome != inject.OutcomeNotManifested {
				manifested++
			}
		}
	}
	b.ReportMetric(float64(manifested), "manifested_of_24")
}

// BenchmarkFigure6CrashCauses regenerates the crash-cause
// distributions and reports the four-major-cause share.
func BenchmarkFigure6CrashCauses(b *testing.B) {
	s := study(b)
	all := s.Set.All()
	var share float64
	for i := 0; i < b.N; i++ {
		share = analysis.MajorCauseShare(analysis.CrashCauses(all))
	}
	b.ReportMetric(100*share, "major_cause_pct")
	// Per-campaign invalid-opcode share (the paper: C is dominated by
	// invalid opcode from kernel assertions).
	for _, c := range []inject.Campaign{inject.CampaignA, inject.CampaignC} {
		causes := analysis.CrashCauses(s.Results(c))
		total, inv := 0, 0
		for _, cc := range causes {
			total += cc.Count
			if cc.Cause == dump.CauseInvalidOpcode {
				inv = cc.Count
			}
		}
		if total > 0 {
			name := "A_invalid_opcode_pct"
			if c == inject.CampaignC {
				name = "C_invalid_opcode_pct"
			}
			b.ReportMetric(100*float64(inv)/float64(total), name)
		}
	}
}

// BenchmarkFigure7CrashLatency regenerates the latency histograms and
// reports the within-10-cycles share per campaign.
func BenchmarkFigure7CrashLatency(b *testing.B) {
	s := study(b)
	var fast float64
	for i := 0; i < b.N; i++ {
		d := analysis.Latency(s.Set.All())["all"]
		fast = d.Share(0)
	}
	b.ReportMetric(100*fast, "lt10cycles_pct")
	for _, c := range []inject.Campaign{inject.CampaignA, inject.CampaignC} {
		d := analysis.Latency(s.Results(c))["all"]
		if d == nil || d.Total == 0 {
			continue
		}
		name := "A_lt10_pct"
		if c == inject.CampaignC {
			name = "C_lt10_pct"
		}
		b.ReportMetric(100*d.Share(0), name)
	}
}

// BenchmarkFigure8Propagation regenerates the error-propagation
// analysis and reports the fs and kernel propagation rates.
func BenchmarkFigure8Propagation(b *testing.B) {
	s := study(b)
	all := s.Set.All()
	var prop map[string]*analysis.PropRow
	for i := 0; i < b.N; i++ {
		prop = analysis.Propagation(all)
	}
	for _, sub := range []string{"fs", "kernel"} {
		if row := prop[sub]; row != nil && row.Total > 0 {
			b.ReportMetric(100*row.PropagationRate(), sub+"_propagation_pct")
		}
	}
}

// BenchmarkTable5SevereCrashes regenerates the severity analysis.
func BenchmarkTable5SevereCrashes(b *testing.B) {
	s := study(b)
	all := s.Set.All()
	var most []inject.Result
	var sev map[inject.Severity]int
	for i := 0; i < b.N; i++ {
		most = analysis.MostSevere(all)
		sev = analysis.SeverityCounts(all)
	}
	b.ReportMetric(float64(len(most)), "most_severe")
	b.ReportMetric(float64(sev[inject.SeveritySevere]), "severe")
	b.ReportMetric(float64(sev[inject.SeverityNormal]), "normal")
}

// BenchmarkTable6NotManifested regenerates the campaign-B
// not-manifested branch case studies.
func BenchmarkTable6NotManifested(b *testing.B) {
	rs := campaignResults(b, inject.CampaignB)
	var cases int
	for i := 0; i < b.N; i++ {
		cases = len(analysis.NotManifestedBranchCases(rs, 1<<30))
	}
	b.ReportMetric(float64(cases), "nm_branch_cases")
}

// BenchmarkTable7CaseStudies regenerates one crash case study per
// major cause.
func BenchmarkTable7CaseStudies(b *testing.B) {
	s := study(b)
	all := s.Set.All()
	var covered int
	for i := 0; i < b.N; i++ {
		cases := analysis.CrashCasesByCause(all)
		covered = 0
		for _, c := range dump.MajorCauses {
			if cases[c] != nil {
				covered++
			}
		}
	}
	b.ReportMetric(float64(covered), "major_causes_with_case")
}

// BenchmarkGoldenRun measures the cost of one fault-free benchmark
// pass (the unit of every injection experiment). Checkpointing is
// disabled: with it on, the runner would synthesize every iteration
// after the first from the cached never-activated entry and the
// benchmark would stop measuring a machine run at all.
func BenchmarkGoldenRun(b *testing.B) {
	runner, err := inject.NewRunnerWithOptions(unixbench.Suite(1), inject.RunnerOptions{NoCheckpoint: true})
	if err != nil {
		b.Fatal(err)
	}
	fn, _ := runner.M.Prog.FuncByName("cpu_idle") // never activated
	t := inject.Target{Func: fn, InstAddr: fn.Addr, InstLen: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _ := runner.RunTarget(inject.CampaignA, t)
		if res.Outcome != inject.OutcomeNotActivated {
			b.Fatal("unexpected activation")
		}
	}
}

// BenchmarkInjectionRun measures one complete activated injection
// experiment — the unit that the full study repeats ~4,300 times and
// the paper ~35,000 times. With checkpointing (the default), the first
// iteration records a full run and captures a checkpoint at the
// activation PC; every later iteration replays from it, which is the
// steady-state cost of a study whose targets share activation PCs.
func BenchmarkInjectionRun(b *testing.B) {
	benchInjectionRun(b, inject.RunnerOptions{})
}

// BenchmarkInjectionRunFullReplay is the same experiment with
// checkpointing off: every iteration restores the pristine snapshot
// and runs from boot state to outcome (the pre-checkpoint baseline).
func BenchmarkInjectionRunFullReplay(b *testing.B) {
	benchInjectionRun(b, inject.RunnerOptions{NoCheckpoint: true})
}

func benchInjectionRun(b *testing.B, opts inject.RunnerOptions) {
	runner, err := inject.NewRunnerWithOptions(unixbench.Suite(1), opts)
	if err != nil {
		b.Fatal(err)
	}
	fn, ok := runner.M.Prog.FuncByName("do_generic_file_read")
	if !ok {
		b.Fatal("no do_generic_file_read")
	}
	rng := rand.New(rand.NewSource(9))
	targets, err := inject.EnumerateTargets(runner.M.Prog, fn, inject.CampaignA, rng)
	if err != nil {
		b.Fatal(err)
	}
	if len(targets) == 0 {
		b.Fatal("no targets")
	}
	t := targets[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, hf := runner.RunTarget(inject.CampaignA, t)
		if hf != nil {
			b.Fatal(hf)
		}
		if !res.Activated {
			b.Fatal("target not activated")
		}
	}
}

// BenchmarkAblationAssertions quantifies the paper's §8 proposal
// (strategic assertion placement detects errors before they
// propagate): campaign C against the normal kernel vs. a build with
// every BUG()/ud2 assertion stripped. Metrics: assertion-detected
// (invalid opcode) crash counts and total detected failures in each
// build.
func BenchmarkAblationAssertions(b *testing.B) {
	ws := unixbench.Suite(1)
	fns := []string{
		"getblk", "iput", "brelse", "ext2_find_entry", "pipe_read",
		"do_generic_file_read", "zap_page_range", "wake_up_process",
	}
	run := func(opts inject.RunnerOptions) (invalid, detected int) {
		runner, err := inject.NewRunnerWithOptions(ws, opts)
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(21))
		for _, name := range fns {
			fn, ok := runner.M.Prog.FuncByName(name)
			if !ok {
				continue
			}
			targets, err := inject.EnumerateTargets(runner.M.Prog, fn, inject.CampaignC, rng)
			if err != nil {
				b.Fatal(err)
			}
			for _, tg := range targets {
				res, _ := runner.RunTarget(inject.CampaignC, tg)
				if res.Outcome == inject.OutcomeCrash && res.Crash.Cause == dump.CauseInvalidOpcode {
					invalid++
				}
				if res.Outcome == inject.OutcomeCrash || res.Outcome == inject.OutcomeHang {
					detected++
				}
			}
		}
		return
	}
	var invBase, detBase, invAbl, detAbl int
	for i := 0; i < b.N; i++ {
		invBase, detBase = run(inject.RunnerOptions{})
		invAbl, detAbl = run(inject.RunnerOptions{DisableAssertions: true})
	}
	b.ReportMetric(float64(invBase), "assert_detected")
	b.ReportMetric(float64(detBase), "detected_with_asserts")
	b.ReportMetric(float64(invAbl), "assert_detected_ablated")
	b.ReportMetric(float64(detAbl), "detected_without_asserts")
}

// BenchmarkAblationWorkloadScale measures how workload intensity
// drives error activation (the paper chose UnixBench precisely to
// maximize activation): campaign C activation rate at workload scale 1
// vs scale 3.
func BenchmarkAblationWorkloadScale(b *testing.B) {
	activation := func(scale int) float64 {
		runner, err := inject.NewRunner(unixbench.Suite(unixbench.Scale(scale)))
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(33))
		activated, total := 0, 0
		for _, fn := range runner.M.Prog.Funcs {
			if fn.Section != "fs" && fn.Section != "mm" {
				continue
			}
			targets, err := inject.EnumerateTargets(runner.M.Prog, fn, inject.CampaignC, rng)
			if err != nil {
				b.Fatal(err)
			}
			for _, tg := range targets {
				res, _ := runner.RunTarget(inject.CampaignC, tg)
				total++
				if res.Activated {
					activated++
				}
			}
		}
		if total == 0 {
			b.Fatal("no targets")
		}
		return 100 * float64(activated) / float64(total)
	}
	var a1, a3 float64
	for i := 0; i < b.N; i++ {
		a1 = activation(1)
		a3 = activation(3)
	}
	b.ReportMetric(a1, "activated_pct_scale1")
	b.ReportMetric(a3, "activated_pct_scale3")
}
