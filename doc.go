// Package repro reproduces "Characterization of Linux Kernel Behavior
// under Errors" (Gu, Kalbarczyk, Iyer, Yang — DSN 2003) as a Go
// library: a simulated IA-32 machine running a miniature Linux-like
// kernel, the UnixBench workload suite, a kernel profiler, the
// single-bit error injector with its three campaigns, and the analysis
// layer that regenerates every table and figure of the paper's
// evaluation.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured comparison. The benchmarks in bench_test.go
// regenerate each experiment; cmd/kinject runs the full study.
package repro
